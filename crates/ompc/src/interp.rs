//! Tree-walking interpreter executing the lowered IR on the NOW runtime.
//!
//! Sequential code runs in the master's context ([`nomp::Env`]); a
//! [`LStmt::Parallel`] statement outlines its region body into a closure
//! and forks it onto every simulated workstation exactly like a
//! hand-written `nomp` program, shipping a copy of the enclosing private
//! frame as the firstprivate environment (modeled in the fork payload).
//! Shared globals are `SharedScalar`/`SharedVec` handles, so every
//! access a translated program makes pays real protocol traffic and
//! virtual time on the simulated network.
//!
//! Regions from which a `task`/`taskwait` is reachable (lexically or
//! through called functions — resolved by sema) run as distributed task
//! scopes ([`nomp::Env::task_scope`]): the region body becomes the
//! scope's init phase and each `task` construct ships its ≤3 captured
//! privates through the 32-byte task descriptor. Other regions fork as
//! plain parallel regions and pay no tasking overhead.
//!
//! Compile-time errors are [`crate::Diag`]s; *runtime* errors (index out
//! of bounds, invalid array length, modulo by zero) panic with a spanned
//! `ompc runtime error` message, the translated analogue of a segfault.

use crate::ast::{BinOp, SchedKind, UnOp};
use crate::diag::Span;
use crate::dynrace::{DataRace, Monitor};
use crate::ir::*;
use nomp::{
    Env, LoopCursor, LoopPlan, LoopShared, OmpThread, Reduce, Schedule, SharedScalar, SharedVec,
    TaskArgs, TaskScope, TaskScopeConfig, Tmk,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A shared global's DSM handle.
#[derive(Clone, Copy)]
pub(crate) enum GSlot {
    Scalar(SharedScalar<f64>),
    Array(SharedVec<f64>),
}

/// Resolved work-shared loop site: schedule plus the master-allocated
/// shared loop state (chunk counter, adaptive rate table, or affinity
/// partitions — non-static policies only).
type LoopRt = (Schedule, Option<LoopShared>);

/// The execution context a statement runs in.
pub(crate) enum Exec<'a, 'b, 't> {
    /// Master sequential sections (can fork regions).
    Master(&'a mut Env<'t>),
    /// One thread of a plain parallel region.
    Thread(&'a mut OmpThread<'t>),
    /// One thread of a task-scope region (can spawn tasks).
    Tasks(&'a mut TaskScope<'b, 't>),
}

impl<'a, 'b, 't> Exec<'a, 'b, 't> {
    fn tmk(&mut self) -> &mut Tmk {
        match self {
            Exec::Master(e) => e,
            Exec::Thread(t) => t,
            Exec::Tasks(s) => s,
        }
    }

    fn env(&mut self) -> &mut Env<'t> {
        match self {
            Exec::Master(e) => e,
            _ => unreachable!("region fork outside sequential context (sema bug)"),
        }
    }

    fn th(&mut self) -> &mut OmpThread<'t> {
        match self {
            Exec::Thread(t) => t,
            Exec::Tasks(s) => s,
            Exec::Master(_) => unreachable!("worksharing outside a parallel region (sema bug)"),
        }
    }

    fn is_master_seq(&self) -> bool {
        matches!(self, Exec::Master(_))
    }

    /// The executing thread's global id (0 in sequential context).
    fn thread_id(&mut self) -> usize {
        match self {
            Exec::Master(_) => 0,
            Exec::Thread(t) => t.thread_num(),
            Exec::Tasks(s) => s.thread_num(),
        }
    }

    /// Total processors of the simulated machine:
    /// `nodes × threads_per_node`.
    fn total_procs(&mut self) -> usize {
        match self {
            Exec::Master(e) => e.num_threads(),
            Exec::Thread(t) => t.num_threads(),
            Exec::Tasks(s) => s.num_threads(),
        }
    }

    fn spawn(&mut self, args: TaskArgs) {
        match self {
            Exec::Tasks(s) => s.task(args),
            _ => unreachable!("task spawn outside a task scope (sema bug)"),
        }
    }

    fn taskwait(&mut self) {
        match self {
            Exec::Tasks(s) => s.taskwait(),
            _ => unreachable!("taskwait outside a task scope (sema bug)"),
        }
    }
}

/// Bound on translated-program call nesting: runaway recursion must be
/// a clean spanned runtime error, not a host stack overflow (the parser
/// bounds expression nesting the same way).
const MAX_CALL_DEPTH: u32 = 256;

/// Shared interpreter state for one execution context.
struct Icx<'x> {
    prog: &'x Arc<LProgram>,
    globals: &'x [GSlot],
    /// Resolved loop sites of the enclosing region (empty elsewhere).
    loops: &'x [LoopRt],
    /// Print sink: captured on the master, flushed with a `[t<id>]`
    /// prefix at the end of a region/task on workers.
    lines: &'x mut Vec<String>,
    /// Current translated-program call depth (bounded by
    /// [`MAX_CALL_DEPTH`]).
    depth: u32,
    /// Dynamic happens-before race monitor (`Compiled::check_races`).
    mon: Option<Arc<Monitor>>,
}

/// Record one shared access with the race monitor, if it is on.
fn note_access(
    cx: &Icx<'_>,
    ex: &mut Exec<'_, '_, '_>,
    gid: u16,
    idx: Option<usize>,
    write: bool,
    span: Span,
) {
    if let Some(m) = &cx.mon {
        let t = ex.thread_id();
        let vt = ex.tmk().now_ns();
        m.access(t, gid, idx, write, span, vt);
    }
}

/// A runtime barrier, bracketed by the monitor's two clock phases: every
/// participant contributes its clock before the real barrier and adopts
/// the merged clock after (the real barrier guarantees completeness).
fn mon_barrier(cx: &Icx<'_>, ex: &mut Exec<'_, '_, '_>) {
    if let Some(m) = &cx.mon {
        m.barrier_arrive(ex.thread_id());
    }
    ex.th().barrier();
    if let Some(m) = &cx.mon {
        m.barrier_depart(ex.thread_id());
    }
}

enum Flow {
    Normal,
    Ret(f64),
}

// ----------------------------------------------------------------------
// Program entry
// ----------------------------------------------------------------------

/// Everything `run` gives back to the embedder (see [`crate::OmpOutcome`]).
pub(crate) struct MasterOut {
    pub ret: f64,
    pub lines: Vec<String>,
    pub scalars: BTreeMap<String, f64>,
    pub arrays: BTreeMap<String, Vec<f64>>,
    pub races: Vec<DataRace>,
}

pub(crate) fn run_master(prog: &Arc<LProgram>, env: &mut Env<'_>, check_races: bool) -> MasterOut {
    let mut globals: Vec<GSlot> = Vec::with_capacity(prog.globals.len());
    let mut lines: Vec<String> = Vec::new();
    let mon = check_races.then(|| {
        Arc::new(Monitor::new(
            env.num_threads(),
            env.threads_per_node(),
            prog.globals.iter().map(|g| g.name.clone()).collect(),
        ))
    });

    for g in &prog.globals {
        match &g.kind {
            LGlobalKind::Scalar { init } => {
                let v = match init {
                    Some(e) => {
                        let mut ex = Exec::Master(env);
                        let mut frame = Vec::new();
                        let mut cx = Icx {
                            prog,
                            globals: &globals,
                            loops: &[],
                            lines: &mut lines,
                            depth: 0,
                            mon: mon.clone(),
                        };
                        eval(&mut cx, &mut ex, &mut frame, e)
                    }
                    None => 0.0,
                };
                let v = if g.trunc { v.trunc() } else { v };
                globals.push(GSlot::Scalar(env.malloc_scalar(v)));
            }
            LGlobalKind::Array { len } => {
                let mut ex = Exec::Master(env);
                let mut frame = Vec::new();
                let mut cx = Icx {
                    prog,
                    globals: &globals,
                    loops: &[],
                    lines: &mut lines,
                    depth: 0,
                    mon: mon.clone(),
                };
                let n = eval(&mut cx, &mut ex, &mut frame, len).trunc();
                if !(1.0..=1e8).contains(&n) {
                    panic!(
                        "ompc runtime error at line {}: array `{}` has invalid length {n}",
                        g.span, g.name
                    );
                }
                globals.push(GSlot::Array(env.malloc_vec::<f64>(n as usize)));
            }
        }
    }

    let f = &prog.funcs[prog.main_fn];
    let mut frame = vec![0.0; f.frame];
    let flow = {
        let mut ex = Exec::Master(env);
        let mut cx = Icx {
            prog,
            globals: &globals,
            loops: &[],
            lines: &mut lines,
            depth: 0,
            mon: mon.clone(),
        };
        exec_stmts(&mut cx, &mut ex, &mut frame, &f.body)
    };
    let ret = match flow {
        Flow::Ret(v) => v,
        Flow::Normal => 0.0,
    };

    let mut scalars = BTreeMap::new();
    let mut arrays = BTreeMap::new();
    for (g, slot) in prog.globals.iter().zip(&globals) {
        match slot {
            GSlot::Scalar(s) => {
                scalars.insert(g.name.clone(), s.get(env));
            }
            GSlot::Array(a) => {
                arrays.insert(g.name.clone(), env.read_slice(a, 0..a.len()));
            }
        }
    }
    MasterOut {
        ret,
        lines,
        scalars,
        arrays,
        races: mon.as_ref().map(|m| m.take_races()).unwrap_or_default(),
    }
}

// ----------------------------------------------------------------------
// Region + task execution
// ----------------------------------------------------------------------

fn fork_region(cx: &mut Icx<'_>, ex: &mut Exec<'_, '_, '_>, frame: &mut [f64], rid: usize) {
    let env = ex.env();
    let reg = &cx.prog.regions[rid];
    let default_chunk = env.default_dynamic_chunk();
    let loops: Vec<LoopRt> = reg
        .loops
        .iter()
        .map(|ls| {
            let sched = env.resolve_schedule(to_schedule(*ls, default_chunk));
            let shared = env.alloc_loop_shared(sched);
            (sched, shared)
        })
        .collect();
    let snapshot: Vec<f64> = frame.to_vec();
    // The fork message carries the firstprivate environment: the whole
    // enclosing frame, 8 bytes per slot.
    let payload = snapshot.len() * 8;
    let prog = cx.prog.clone();
    let globals: Vec<GSlot> = cx.globals.to_vec();
    let mon = cx.mon.clone();
    if let Some(m) = &mon {
        m.fork();
    }
    if reg.uses_tasks {
        let prog2 = prog.clone();
        let globals2 = globals.clone();
        let mon2 = mon.clone();
        let mon3 = mon.clone();
        env.task_scope(
            TaskScopeConfig {
                fork_payload_bytes: payload,
                ..Default::default()
            },
            move |s| {
                let mut ex = Exec::Tasks(s);
                run_region_thread(&prog, &globals, &loops, rid, &snapshot, &mon2, &mut ex);
            },
            move |s, args| {
                let mut ex = Exec::Tasks(s);
                run_task_site(&prog2, &globals2, args, &mon3, &mut ex);
            },
        );
    } else {
        let mon2 = mon.clone();
        env.parallel_sized(payload, move |t| {
            let mut ex = Exec::Thread(t);
            run_region_thread(&prog, &globals, &loops, rid, &snapshot, &mon2, &mut ex);
        });
    }
    if let Some(m) = &mon {
        m.join();
    }
}

fn run_region_thread(
    prog: &Arc<LProgram>,
    globals: &[GSlot],
    loops: &[LoopRt],
    rid: usize,
    snapshot: &[f64],
    mon: &Option<Arc<Monitor>>,
    ex: &mut Exec<'_, '_, '_>,
) {
    let reg = &prog.regions[rid];
    let mut frame = snapshot.to_vec();
    frame.resize(reg.frame, 0.0);
    for red in &reg.reds {
        frame[red.slot as usize] = f64::identity(red.op);
    }
    let mut lines = Vec::new();
    let flow = {
        let mut cx = Icx {
            prog,
            globals,
            loops,
            lines: &mut lines,
            depth: 0,
            mon: mon.clone(),
        };
        exec_stmts(&mut cx, ex, &mut frame, &reg.body)
    };
    debug_assert!(matches!(flow, Flow::Normal), "return escaped a region");
    for red in &reg.reds {
        combine_red(ex, globals, red, frame[red.slot as usize]);
    }
    flush_lines(ex, lines);
}

fn run_task_site(
    prog: &Arc<LProgram>,
    globals: &[GSlot],
    args: TaskArgs,
    mon: &Option<Arc<Monitor>>,
    ex: &mut Exec<'_, '_, '_>,
) {
    let site = &prog.tasks[args.a as usize];
    let mut frame = vec![0.0; site.frame];
    let words = [args.b, args.c, args.d];
    for (i, &slot) in site.caps.iter().enumerate() {
        frame[slot as usize] = f64::from_bits(words[i]);
    }
    if let Some(m) = mon {
        m.task_started(ex.thread_id());
    }
    let mut lines = Vec::new();
    let flow = {
        let mut cx = Icx {
            prog,
            globals,
            loops: &[],
            lines: &mut lines,
            depth: 0,
            mon: mon.clone(),
        };
        exec_stmts(&mut cx, ex, &mut frame, &site.body)
    };
    debug_assert!(matches!(flow, Flow::Normal), "return escaped a task");
    if let Some(m) = mon {
        m.task_finished(ex.thread_id());
    }
    flush_lines(ex, lines);
}

fn flush_lines(ex: &mut Exec<'_, '_, '_>, lines: Vec<String>) {
    if lines.is_empty() {
        return;
    }
    let tid = ex.thread_id();
    for l in lines {
        println!("[t{tid}] {l}");
    }
}

// ----------------------------------------------------------------------
// Statements
// ----------------------------------------------------------------------

fn exec_stmts(
    cx: &mut Icx<'_>,
    ex: &mut Exec<'_, '_, '_>,
    frame: &mut Vec<f64>,
    stmts: &[LStmt],
) -> Flow {
    for s in stmts {
        match exec_stmt(cx, ex, frame, s) {
            Flow::Normal => {}
            ret => return ret,
        }
    }
    Flow::Normal
}

fn exec_stmt(cx: &mut Icx<'_>, ex: &mut Exec<'_, '_, '_>, frame: &mut Vec<f64>, s: &LStmt) -> Flow {
    match s {
        LStmt::SetLocal {
            slot, trunc, val, ..
        } => {
            let v = eval(cx, ex, frame, val);
            frame[*slot as usize] = if *trunc { v.trunc() } else { v };
        }
        LStmt::SetGlobal {
            gid,
            trunc,
            val,
            span,
        } => {
            let v = eval(cx, ex, frame, val);
            let v = if *trunc { v.trunc() } else { v };
            let GSlot::Scalar(s) = cx.globals[*gid as usize] else {
                unreachable!("SetGlobal on array");
            };
            s.set(ex.tmk(), v);
            note_access(cx, ex, *gid, None, true, *span);
        }
        LStmt::SetElem {
            gid,
            trunc,
            idx,
            val,
            span,
        } => {
            let i = eval(cx, ex, frame, idx);
            let v = eval(cx, ex, frame, val);
            let v = if *trunc { v.trunc() } else { v };
            let GSlot::Array(a) = cx.globals[*gid as usize] else {
                unreachable!("SetElem on scalar");
            };
            let i = check_index(cx, *gid, i, a.len(), *span);
            ex.tmk().write(&a, i, v);
            note_access(cx, ex, *gid, Some(i), true, *span);
        }
        LStmt::If { cond, then_, else_ } => {
            let c = eval(cx, ex, frame, cond);
            let branch = if c != 0.0 { then_ } else { else_ };
            return exec_stmts(cx, ex, frame, branch);
        }
        LStmt::While { cond, body } => {
            while eval(cx, ex, frame, cond) != 0.0 {
                match exec_stmts(cx, ex, frame, body) {
                    Flow::Normal => {}
                    ret => return ret,
                }
            }
        }
        LStmt::Return(v) => {
            let val = v.as_ref().map(|e| eval(cx, ex, frame, e)).unwrap_or(0.0);
            return Flow::Ret(val);
        }
        LStmt::Expr(e) => {
            eval(cx, ex, frame, e);
        }
        LStmt::Print(parts) => {
            let mut line = String::new();
            for p in parts {
                match p {
                    LPrint::Str(s) => line.push_str(s),
                    LPrint::Val(e) => {
                        let v = eval(cx, ex, frame, e);
                        line.push_str(&fmt_val(v));
                    }
                }
            }
            cx.lines.push(line);
        }
        LStmt::Parallel { region } => {
            fork_region(cx, ex, frame, *region as usize);
        }
        LStmt::WsFor(w) => exec_ws_for(cx, ex, frame, w),
        LStmt::Single { body, .. } => {
            if ex.thread_id() == 0 {
                let flow = exec_stmts(cx, ex, frame, body);
                debug_assert!(matches!(flow, Flow::Normal));
            }
            // Implied barrier (two-level on SMP topologies).
            mon_barrier(cx, ex);
        }
        LStmt::Critical { lock, body, .. } => {
            // In a sequential section only the master runs — no
            // contention is possible, so the lock is elided. The guard
            // frees the node gate on unwind, so a translated-program
            // runtime panic inside the section cannot wedge an SMP node.
            let seq = ex.is_master_seq();
            let txn = (!seq).then(|| ex.th().enter_critical(*lock));
            if !seq {
                if let Some(m) = &cx.mon {
                    m.acquire(ex.thread_id(), *lock);
                }
            }
            let flow = exec_stmts(cx, ex, frame, body);
            if !seq {
                if let Some(m) = &cx.mon {
                    m.release(ex.thread_id(), *lock);
                }
                ex.th().exit_critical(*lock);
            }
            drop(txn);
            debug_assert!(matches!(flow, Flow::Normal));
        }
        LStmt::Barrier(_) => mon_barrier(cx, ex),
        LStmt::Task { site } => {
            let t = &cx.prog.tasks[*site as usize];
            let mut words = [0u64; 3];
            for (i, &slot) in t.caps.iter().enumerate() {
                words[i] = frame[slot as usize].to_bits();
            }
            // The spawn edge must be published before the task can start
            // on another thread.
            if let Some(m) = &cx.mon {
                m.task_spawned(ex.thread_id());
            }
            ex.spawn(TaskArgs {
                a: *site as u64,
                b: words[0],
                c: words[1],
                d: words[2],
            });
        }
        LStmt::Taskwait => {
            ex.taskwait();
            if let Some(m) = &cx.mon {
                m.taskwait(ex.thread_id());
            }
        }
    }
    Flow::Normal
}

fn exec_ws_for(cx: &mut Icx<'_>, ex: &mut Exec<'_, '_, '_>, frame: &mut Vec<f64>, w: &WsFor) {
    // Copy the slice reference out of `cx` so the loop-site borrow does
    // not pin `cx` across the bound evaluations below.
    let loops = cx.loops;
    let (sched, shared) = &loops[w.loop_idx as usize];
    let (sched, shared) = (*sched, shared.as_ref());
    let lo = eval(cx, ex, frame, &w.lo).trunc();
    let hi = eval(cx, ex, frame, &w.hi).trunc();
    if !(lo >= 0.0 && hi <= 1e15 && hi.is_finite()) {
        panic!(
            "ompc runtime error at line {}: work-shared loop bounds out of range ({lo}..{hi})",
            w.span
        );
    }
    let lo = lo as usize;
    let hi = (hi.max(0.0) as usize).max(lo);
    let plan = LoopPlan::new(sched, lo..hi, shared.cloned());
    for red in &w.reds {
        frame[red.slot as usize] = f64::identity(red.op);
    }
    let mut cursor = LoopCursor::new();
    while let Some(r) = plan.next_chunk(ex.th(), &mut cursor) {
        for i in r {
            frame[w.var as usize] = i as f64;
            let flow = exec_stmts(cx, ex, frame, &w.body);
            debug_assert!(matches!(flow, Flow::Normal), "return escaped a loop");
        }
    }
    for red in &w.reds {
        combine_red(ex, cx.globals, red, frame[red.slot as usize]);
    }
    if w.barrier_after {
        // The implied end-of-worksharing barrier (two-level on SMP).
        mon_barrier(cx, ex);
    }
    if w.reset_after {
        if let Some(sh) = shared {
            // The region may run this loop again: reset the shared loop
            // state behind the implied barrier, and fence the reset so
            // no thread can re-enter early. (Adaptive rate history and
            // affinity partition identity survive the reset — that is
            // the cross-execution history those policies exploit.)
            if ex.thread_id() == 0 {
                sh.reset(ex.tmk());
            }
            mon_barrier(cx, ex);
        }
    }
}

fn combine_red(ex: &mut Exec<'_, '_, '_>, globals: &[GSlot], red: &RedSite, local: f64) {
    let GSlot::Scalar(s) = globals[red.gid as usize] else {
        unreachable!("reduction on array global");
    };
    // Two-level: combine in node shared memory first; one thread per
    // node publishes the node total under the site's lock (a single DSM
    // contribution per node — on n×1 every thread publishes its own).
    let (op, trunc, lock) = (red.op, red.trunc, red.lock);
    let th = ex.th();
    if let Some(total) = th.reduce_combine(lock, local, move |a, b| f64::combine(op, a, b)) {
        th.enter_critical(lock);
        let cur = s.get(th);
        let next = f64::combine(op, cur, total);
        s.set(th, if trunc { next.trunc() } else { next });
        th.exit_critical(lock);
    }
}

// ----------------------------------------------------------------------
// Expressions
// ----------------------------------------------------------------------

fn eval(cx: &mut Icx<'_>, ex: &mut Exec<'_, '_, '_>, frame: &mut Vec<f64>, e: &LExpr) -> f64 {
    match e {
        LExpr::Num(v) => *v,
        LExpr::Local(slot) => frame[*slot as usize],
        LExpr::Global(gid, span) => {
            let GSlot::Scalar(s) = cx.globals[*gid as usize] else {
                unreachable!("scalar read of array");
            };
            let v = s.get(ex.tmk());
            note_access(cx, ex, *gid, None, false, *span);
            v
        }
        LExpr::Elem(gid, idx, span) => {
            let i = eval(cx, ex, frame, idx);
            let GSlot::Array(a) = cx.globals[*gid as usize] else {
                unreachable!("indexed read of scalar");
            };
            let i = check_index(cx, *gid, i, a.len(), *span);
            let v = ex.tmk().read(&a, i);
            note_access(cx, ex, *gid, Some(i), false, *span);
            v
        }
        LExpr::Un(op, a) => {
            let v = eval(cx, ex, frame, a);
            match op {
                UnOp::Neg => -v,
                UnOp::Not => {
                    if v == 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
        }
        LExpr::Bin(op, a, b) => {
            // Short-circuit logicals first.
            match op {
                BinOp::And => {
                    return if eval(cx, ex, frame, a) != 0.0 && eval(cx, ex, frame, b) != 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                }
                BinOp::Or => {
                    return if eval(cx, ex, frame, a) != 0.0 || eval(cx, ex, frame, b) != 0.0 {
                        1.0
                    } else {
                        0.0
                    };
                }
                _ => {}
            }
            let x = eval(cx, ex, frame, a);
            let y = eval(cx, ex, frame, b);
            let bool_to_f = |b: bool| if b { 1.0 } else { 0.0 };
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
                BinOp::Mod => {
                    let yi = y.trunc() as i64;
                    if yi == 0 {
                        panic!("ompc runtime error: modulo by zero");
                    }
                    ((x.trunc() as i64) % yi) as f64
                }
                BinOp::Eq => bool_to_f(x == y),
                BinOp::Ne => bool_to_f(x != y),
                BinOp::Lt => bool_to_f(x < y),
                BinOp::Le => bool_to_f(x <= y),
                BinOp::Gt => bool_to_f(x > y),
                BinOp::Ge => bool_to_f(x >= y),
                BinOp::And | BinOp::Or => unreachable!(),
            }
        }
        LExpr::Call(fid, args) => {
            let f = &cx.prog.funcs[*fid as usize];
            let mut new_frame = vec![0.0; f.frame];
            for (i, a) in args.iter().enumerate() {
                let v = eval(cx, ex, frame, a);
                new_frame[i] = if f.param_trunc[i] { v.trunc() } else { v };
            }
            cx.depth += 1;
            if cx.depth > MAX_CALL_DEPTH {
                panic!(
                    "ompc runtime error: call depth exceeded {MAX_CALL_DEPTH} (runaway recursion?)"
                );
            }
            let r = match exec_stmts(cx, ex, &mut new_frame, &f.body) {
                Flow::Ret(v) => v,
                Flow::Normal => 0.0,
            };
            cx.depth -= 1;
            r
        }
        LExpr::Builtin(b, args) => {
            let mut vals = [0.0f64; 2];
            for (i, a) in args.iter().enumerate() {
                vals[i] = eval(cx, ex, frame, a);
            }
            match b {
                Builtin::Sqrt => vals[0].sqrt(),
                Builtin::Fabs => vals[0].abs(),
                Builtin::Floor => vals[0].floor(),
                Builtin::Sin => vals[0].sin(),
                Builtin::Cos => vals[0].cos(),
                Builtin::Exp => vals[0].exp(),
                Builtin::ThreadNum => ex.thread_id() as f64,
                Builtin::NumThreads => {
                    if ex.is_master_seq() {
                        1.0
                    } else {
                        ex.total_procs() as f64
                    }
                }
                Builtin::NumProcs => ex.total_procs() as f64,
                Builtin::Wtime => ex.tmk().now_ns() as f64 / 1e9,
            }
        }
    }
}

fn check_index(cx: &Icx<'_>, gid: u16, i: f64, len: usize, span: crate::diag::Span) -> usize {
    let ii = i.trunc();
    // NB: the comparison is written so NaN fails it too.
    if !(ii >= 0.0 && ii < len as f64) {
        panic!(
            "ompc runtime error at line {span}: index {i} out of bounds for `{}` (len {len})",
            cx.prog.globals[gid as usize].name
        );
    }
    ii as usize
}

fn to_schedule(ls: LSched, default_dynamic: usize) -> Schedule {
    match ls.kind {
        SchedKind::Static => {
            if ls.chunk == 0 {
                Schedule::Static
            } else {
                Schedule::StaticChunk(ls.chunk)
            }
        }
        SchedKind::Dynamic => Schedule::Dynamic(if ls.chunk == 0 {
            default_dynamic
        } else {
            ls.chunk
        }),
        SchedKind::Guided => Schedule::Guided(ls.chunk.max(1)),
        SchedKind::Adaptive => Schedule::Adaptive(ls.chunk.max(1)),
        SchedKind::Affinity => Schedule::Affinity,
        SchedKind::Runtime => Schedule::Runtime,
    }
}

fn fmt_val(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}
