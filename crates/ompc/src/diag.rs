//! Spanned diagnostics: every front-end error points at a source line and
//! column, mirroring the paper's translator reporting misuse of the
//! directives rather than silently miscompiling.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    pub(crate) fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compile-time diagnostic with the source span it refers to.
#[derive(Debug, Clone)]
pub struct Diag {
    /// Human-readable description of the problem.
    pub msg: String,
    /// Where in the source the problem is.
    pub span: Span,
}

impl Diag {
    pub(crate) fn new(span: Span, msg: impl Into<String>) -> Self {
        Diag {
            msg: msg.into(),
            span,
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.span, self.msg)
    }
}

impl std::error::Error for Diag {}
