//! Spanned diagnostics: every front-end error points at a source line and
//! column, mirroring the paper's translator reporting misuse of the
//! directives rather than silently miscompiling.
//!
//! The types themselves live in [`nomp`] (the runtime's unified
//! [`nomp::NowError`] boundary nests them, and a front-end crate cannot
//! be below the runtime it targets); this module re-exports them under
//! their historical home.

pub use nomp::{Diag, Span};
