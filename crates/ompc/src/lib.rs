//! # ompc — an OpenMP directive front-end for the NOW runtime
//!
//! The SC'98 paper's headline contribution is its *translator*: OpenMP
//! source programs are compiled onto TreadMarks calls — shared/private
//! data classification, parallel-region outlining, directive lowering.
//! This crate reproduces that pipeline for a small C-like language:
//!
//! ```text
//!   .omp source ──lex/parse──▶ AST ──classify+lower──▶ IR ──interpret──▶ nomp::Env
//!                 (lex, parse)       (sema)                 (interp)     on the
//!                                                                        simulated NOW
//! ```
//!
//! Translated programs execute through the same [`nomp`] runtime as the
//! hand-written Rust applications, on the same simulated network — they
//! pay real DSM protocol traffic and virtual time, so the translated-vs-
//! hand-written overhead is measurable (see the `ompc_overhead` bench).
//!
//! ## Lowering rules
//!
//! | Source construct | Classification / lowering |
//! |---|---|
//! | global `double x;` / `double a[N];` | **shared**: DSM-resident `SharedScalar`/`SharedVec` (Modification 1) |
//! | function locals, params | **private**: slots in a per-thread frame |
//! | `#pragma omp parallel` | region body outlined; enclosing frame copied per thread (firstprivate environment, modeled in the fork payload); implicit join barrier |
//! | `#pragma omp parallel for` / `omp for` | canonical `for (int i = LO; i < HI; i = i + 1)` driven chunk-wise through [`nomp::LoopPlan`]; interior `omp for` adds the implied end barrier |
//! | `schedule(static[,c] \| dynamic[,c] \| guided[,c] \| runtime)` | [`nomp::Schedule`]; `runtime` resolves from [`nomp::OmpConfig::runtime_schedule`]; dynamic/guided draw chunks from a DSM counter under a runtime lock |
//! | `shared(g)` | legal only for globals; `shared(local)` is a compile error (stack data cannot live in DSM — Modification 1) |
//! | `private(x)` / `firstprivate(x)` | locals: cleared / captured copy; globals: rebound to a fresh private slot (zeroed / seeded from the global) |
//! | `reduction(op:g)` | `g` rebound to a private accumulator seeded with `op`'s identity; combined into the shared global under a per-site lock at construct end |
//! | `#pragma omp critical [(name)]` | [`nomp::critical_id`] lock around the block |
//! | `#pragma omp barrier` | DSM barrier (context-checked over the call graph) |
//! | `#pragma omp single` | thread 0 executes + implied barrier |
//! | `#pragma omp task` | body outlined; ≤[`MAX_TASK_CAPTURES`] referenced privates packed into the 32-byte [`nomp::TaskArgs`] descriptor; regions from which tasks are reachable run as work-stealing task scopes (others fork as plain regions) |
//! | `#pragma omp taskwait` | [`nomp::TaskScope::taskwait`] (four-counter quiescence) |
//! | `int` declarations | value truncated on store (C semantics); `%` is integer modulo |
//!
//! Context rules are enforced over the *call graph*, not just lexically:
//! `task`/`taskwait`/`barrier` may be orphaned in functions called from
//! parallel regions, but are compile errors in any function reachable
//! from sequential context; `for`/`single` must be lexically inside a
//! `parallel`; `parallel` cannot nest.
//!
//! ## Example
//!
//! ```
//! use nomp::OmpConfig;
//!
//! let out = ompc::run_source(
//!     r#"
//!     double pi;
//!     int main() {
//!         int n = 1000;
//!         double step = 1.0 / n;
//!         #pragma omp parallel for reduction(+:pi) schedule(static)
//!         for (int i = 0; i < n; i = i + 1) {
//!             double x = (i + 0.5) * step;
//!             pi = pi + 4.0 / (1.0 + x * x);
//!         }
//!         pi = pi * step;
//!         return 0;
//!     }
//!     "#,
//!     OmpConfig::fast_test(2),
//! )
//! .unwrap();
//! assert!((out.scalars["pi"] - std::f64::consts::PI).abs() < 1e-5);
//! assert!(out.msgs > 0); // the translated program paid real DSM traffic
//! ```

#![warn(missing_docs)]

mod analyze;
mod ast;
mod diag;
mod dynrace;
mod interp;
mod ir;
mod lex;
mod lints;
mod parse;
mod sema;

pub use diag::{Diag, Span};
pub use dynrace::{DataRace, RaceAccess};
pub use lints::{lints_to_json, Lint, LintCode, LintLevel};

use interp::run_master;
use ir::LProgram;
use nomp::{Cluster, Env, Job, NowProgram, OmpConfig, RunReport, TmkStats};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How many private variables a `task` body may capture: the 32-byte
/// task descriptor holds the site id plus three value words.
pub const MAX_TASK_CAPTURES: usize = 3;

/// A compiled `.omp` program, ready to run (cheaply cloneable).
#[derive(Clone)]
pub struct Compiled {
    l: Arc<LProgram>,
    /// Run the dynamic happens-before race checker during execution
    /// (see [`Compiled::check_races`]).
    dynamic_races: bool,
}

/// Parse, classify and lower an `.omp` source program.
///
/// All front-end errors — lexical, syntactic and semantic — come back as
/// a spanned [`Diag`]; this function never panics. A [`Diag`] converts
/// into [`nomp::NowError::Compile`], so `?` composes compile + run on a
/// [`Cluster`] end to end.
pub fn compile(src: &str) -> Result<Compiled, Diag> {
    let ast = parse::parse(src)?;
    let l = sema::lower(&ast)?;
    Ok(Compiled {
        l: Arc::new(l),
        dynamic_races: false,
    })
}

/// A compiled program together with its analyzer findings.
///
/// [`compile_report`] is [`compile`] plus the static race/sync analyzer
/// in one step — the form `now-service` uses at admission and
/// `omp_runner --analyze` prints.
#[derive(Clone)]
pub struct CompileReport {
    /// The runnable program.
    pub program: Compiled,
    /// Analyzer findings, sorted by source position. Levels are `Warn`;
    /// callers that deny races promote with [`promote_races`].
    pub lints: Vec<Lint>,
}

/// Compile and statically analyze a `.omp` program.
pub fn compile_report(src: &str) -> Result<CompileReport, Diag> {
    let program = compile(src)?;
    let lints = analyze::analyze(&program.l);
    Ok(CompileReport { program, lints })
}

/// Promote every race-class lint (`OMP201`..`OMP204`) to
/// [`LintLevel::Deny`] — the `--deny-races` / service-admission policy.
pub fn promote_races(lints: &mut [Lint]) {
    for l in lints {
        if l.code.is_race_class() {
            l.level = lints::LintLevel::Deny;
        }
    }
}

impl Compiled {
    /// Run the static race/sync analyzer over this program.
    ///
    /// Findings come back sorted by source position with stable codes
    /// (`OMP201` shared-write race … `OMP206` dead sync); see the crate
    /// README's lint catalog. The analyzer only reports *provable*
    /// findings, so clean programs — including every shipped example —
    /// produce an empty list.
    pub fn lints(&self) -> Vec<Lint> {
        analyze::analyze(&self.l)
    }

    /// Enable (or disable) the dynamic happens-before race checker for
    /// subsequent runs of this program: every shared load/store is
    /// tagged with its thread's vector clock and concrete racing pairs
    /// are reported in [`ProgramOutput::races`] at the end of the run.
    ///
    /// Off by default — checking costs per-access bookkeeping.
    pub fn check_races(mut self, on: bool) -> Self {
        self.dynamic_races = on;
        self
    }
}

/// Final state of a translated program: one job's result payload on a
/// [`Cluster`] (measurements — virtual time, traffic, DSM counters —
/// ride in the enclosing [`RunReport`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramOutput {
    /// `main`'s return value.
    pub ret: f64,
    /// Lines printed from sequential context (parallel-context prints go
    /// to stdout with a `[t<id>]` prefix as they happen).
    pub printed: Vec<String>,
    /// Final values of all global scalars.
    pub scalars: BTreeMap<String, f64>,
    /// Final contents of all global arrays.
    pub arrays: BTreeMap<String, Vec<f64>>,
    /// Concrete racing access pairs observed by the dynamic
    /// happens-before checker — always empty unless the program was
    /// prepared with [`Compiled::check_races`].
    pub races: Vec<DataRace>,
}

/// A compiled program is a cluster job: `cluster.run(compiled)` executes
/// it through the same session API as handwritten region closures.
///
/// Runtime errors in the translated program (out-of-bounds indexing,
/// invalid array lengths, modulo by zero) panic with a spanned
/// `ompc runtime error` message — the translated analogue of a segfault.
impl NowProgram for Compiled {
    type Output = ProgramOutput;

    fn into_job(self) -> Job<ProgramOutput> {
        let l = self.l;
        let check = self.dynamic_races;
        Job::new(move |env: &mut Env<'_>| {
            let m = run_master(&l, env, check);
            ProgramOutput {
                ret: m.ret,
                printed: m.lines,
                scalars: m.scalars,
                arrays: m.arrays,
                races: m.races,
            }
        })
    }
}

/// Run a compiled program without consuming it (it is cheaply cloneable,
/// so the same `.omp` program can be submitted to a warm cluster again
/// and again).
impl NowProgram for &Compiled {
    type Output = ProgramOutput;

    fn into_job(self) -> Job<ProgramOutput> {
        self.clone().into_job()
    }
}

/// Result of executing a translated program.
#[derive(Debug, Clone)]
pub struct OmpOutcome {
    /// `main`'s return value.
    pub ret: f64,
    /// Lines printed from sequential context (parallel-context prints go
    /// to stdout with a `[t<id>]` prefix as they happen).
    pub printed: Vec<String>,
    /// Final values of all global scalars.
    pub scalars: BTreeMap<String, f64>,
    /// Final contents of all global arrays.
    pub arrays: BTreeMap<String, Vec<f64>>,
    /// Racing pairs from the dynamic checker (empty unless the program
    /// was prepared with [`Compiled::check_races`]).
    pub races: Vec<DataRace>,
    /// Modeled run time in virtual nanoseconds.
    pub vt_ns: u64,
    /// Remote messages the program's DSM traffic needed.
    pub msgs: u64,
    /// Payload bytes on the wire.
    pub bytes: u64,
    /// DSM protocol event counters.
    pub dsm: TmkStats,
}

impl OmpOutcome {
    /// Modeled run time in virtual seconds.
    pub fn vt_seconds(&self) -> f64 {
        self.vt_ns as f64 / 1e9
    }
}

impl OmpOutcome {
    /// Repackage a cluster job's report as the historical outcome type.
    fn from_report(report: RunReport<ProgramOutput>) -> OmpOutcome {
        let msgs = report.msgs();
        let bytes = report.bytes();
        let m = report.result;
        OmpOutcome {
            ret: m.ret,
            printed: m.printed,
            scalars: m.scalars,
            arrays: m.arrays,
            races: m.races,
            vt_ns: report.vt_ns,
            msgs,
            bytes,
            dsm: report.dsm,
        }
    }
}

/// Run a compiled program on a fresh one-job cluster described by `cfg`.
///
/// Thin shim over the [`Cluster`] session API — pass the [`Compiled`]
/// program to [`Cluster::run`] directly to reuse a warm cluster across
/// programs.
pub fn run_compiled(prog: &Compiled, cfg: OmpConfig) -> OmpOutcome {
    let mut cluster = Cluster::from_config(cfg);
    let report = cluster
        .run(prog)
        .expect("a freshly built cluster accepts a job");
    cluster.shutdown(); // surface node-thread panics, as the one-shot runner always did
    OmpOutcome::from_report(report)
}

/// [`compile`] + [`run_compiled`] in one step (one-job shim).
pub fn run_source(src: &str, cfg: OmpConfig) -> Result<OmpOutcome, Diag> {
    let prog = compile(src)?;
    Ok(run_compiled(&prog, cfg))
}
