//! Static data-race & sync-misuse analysis over the lowered IR.
//!
//! Runs after [`crate::sema`], before execution. The pass only reports
//! *provable* findings: an access pair is flagged only when the analysis
//! can show both accesses touch the same shared location from different
//! threads (or task instances) with no ordering barrier and no common
//! lock. Anything it cannot prove — computed indices, loop-carried
//! footprints it cannot separate — stays silent, so the shipped example
//! corpus (`pi`, `dotprod`, `jacobi`, `fib`, `qsort`) lints clean.
//!
//! ## Abstractions
//!
//! - **Footprint** ([`Foot`]): what part of a global an access touches.
//!   `Affine(c)` means `a[i + c]` of the enclosing work-shared loop
//!   variable `i` — two affine accesses with *different* offsets collide
//!   across iterations; the same offset never does (each iteration owns
//!   its cell). `Unknown` never overlaps anything: not provable.
//! - **Phase**: a counter bumped at every barrier (explicit, or implied
//!   by `single` / interior `omp for`). Accesses in different phases are
//!   ordered; only same-phase accesses can race. Task accesses conflict
//!   with every phase at or after their spawn point.
//! - **Multiplicity** ([`Mult`]): how many threads execute a statement —
//!   the whole team, one thread per iteration, thread 0 (`single`), or a
//!   task instance. A plain team/per-iteration write to a fixed cell is
//!   a race *with itself*.
//! - **Function summaries**: accesses, acquired locks, spawned task
//!   sites and barriers of each function, computed to a fixpoint so
//!   recursion (`fib`, `qsort`) converges; instantiated at call sites
//!   with the caller's held locks added.

use crate::diag::Span;
use crate::ir::{Builtin, LExpr, LPrint, LProgram, LRegion, LStmt, WsFor};
use crate::lints::{Lint, LintCode};
use nomp::RedOp;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Run every check over a lowered program. Lints come back sorted by
/// source position and deduplicated; levels are all `Warn` (promotion to
/// `Deny` happens at the reporting surface).
pub(crate) fn analyze(p: &LProgram) -> Vec<Lint> {
    let sums = fn_summaries(p);
    let mut lints: Vec<Lint> = Vec::new();
    let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
    let mut lock_names: BTreeMap<u32, Option<String>> = BTreeMap::new();

    for r in &p.regions {
        analyze_region(p, &sums, r, &mut lints, &mut edges, &mut lock_names);
    }

    // Lock-order edges inside functions reachable from parallel context
    // (sequential criticals are elided by the runtime — no deadlock).
    let par = par_reachable(p);
    for &fid in &par {
        for e in &sums[fid as usize].lock_edges {
            edges.insert(*e);
        }
    }
    lock_order_lints(&edges, &lock_names, &mut lints);
    dead_critical_lints(p, &sums, &par, &mut lints);
    seq_critical_lints(p, &par, &mut lints);

    // A private-escape finding at a span supersedes the plain race lint
    // the same store also triggers.
    let escapes: HashSet<(u32, u32)> = lints
        .iter()
        .filter(|l| l.code == LintCode::PrivateEscape)
        .map(|l| sk(l.span))
        .collect();
    lints.retain(|l| {
        !(matches!(l.code, LintCode::SharedWriteRace | LintCode::ReadWriteRace)
            && escapes.contains(&sk(l.span)))
    });

    lints.sort_by_key(|l| {
        (
            sk(l.span),
            l.code,
            l.related.as_ref().map(|r| sk(r.0)),
            l.msg.clone(),
        )
    });
    lints.dedup_by_key(|l| {
        (
            sk(l.span),
            l.code,
            l.related.as_ref().map(|r| sk(r.0)),
            l.msg.clone(),
        )
    });
    lints
}

fn sk(s: Span) -> (u32, u32) {
    (s.line, s.col)
}

fn unsk(k: (u32, u32)) -> Span {
    Span::new(k.0, k.1)
}

fn gname(p: &LProgram, gid: u16) -> &str {
    &p.globals[gid as usize].name
}

// ---------------------------------------------------------------------
// Footprints
// ---------------------------------------------------------------------

/// What part of a shared global one access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Foot {
    /// The whole scalar.
    Scalar,
    /// A compile-time constant element index.
    Const(i64),
    /// `a[i + c]` of the enclosing work-shared loop variable.
    Affine(i64),
    /// An index every thread computes identically (no locals involved).
    Invariant,
    /// Not provable — never overlaps anything.
    Unknown,
}

/// Can two *distinct* accesses with these footprints touch the same
/// cell (across threads / iterations)? Only provable overlaps count.
fn overlap(a: Foot, b: Foot) -> bool {
    match (a, b) {
        (Foot::Unknown, _) | (_, Foot::Unknown) => false,
        (Foot::Scalar, Foot::Scalar) => true,
        (Foot::Const(x), Foot::Const(y)) => x == y,
        // Same-offset affine accesses partition by iteration; different
        // offsets collide across iterations (loop-carried).
        (Foot::Affine(x), Foot::Affine(y)) => x != y,
        (Foot::Invariant, Foot::Invariant) => true,
        _ => false,
    }
}

/// Does one lexical access race with its own other-thread / other-
/// iteration executions?
fn self_overlap(f: Foot) -> bool {
    matches!(f, Foot::Scalar | Foot::Const(_) | Foot::Invariant)
}

fn const_eval(e: &LExpr) -> Option<f64> {
    use crate::ast::{BinOp, UnOp};
    match e {
        LExpr::Num(v) => Some(*v),
        LExpr::Un(UnOp::Neg, a) => Some(-const_eval(a)?),
        LExpr::Bin(op, a, b) => {
            let (a, b) = (const_eval(a)?, const_eval(b)?);
            match op {
                BinOp::Add => Some(a + b),
                BinOp::Sub => Some(a - b),
                BinOp::Mul => Some(a * b),
                BinOp::Div => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

fn as_const_idx(e: &LExpr) -> Option<i64> {
    let v = const_eval(e)?;
    (v.fract() == 0.0 && v.abs() < 1e15).then_some(v as i64)
}

fn expr_mentions_local(e: &LExpr) -> bool {
    match e {
        LExpr::Num(_) | LExpr::Global(..) => false,
        LExpr::Local(_) => true,
        LExpr::Elem(_, idx, _) => expr_mentions_local(idx),
        LExpr::Un(_, a) => expr_mentions_local(a),
        LExpr::Bin(_, a, b) => expr_mentions_local(a) || expr_mentions_local(b),
        // Calls and thread-dependent builtins are never invariant.
        LExpr::Call(..) => true,
        LExpr::Builtin(b, args) => {
            matches!(b, Builtin::ThreadNum | Builtin::Wtime) || args.iter().any(expr_mentions_local)
        }
    }
}

/// Classify an element index expression relative to the enclosing
/// work-shared loop variable (if any).
fn classify_idx(e: &LExpr, loop_var: Option<u16>) -> Foot {
    use crate::ast::BinOp;
    if let Some(k) = as_const_idx(e) {
        return Foot::Const(k);
    }
    if let Some(lv) = loop_var {
        match e {
            LExpr::Local(s) if *s == lv => return Foot::Affine(0),
            LExpr::Bin(BinOp::Add, a, b) => {
                if let (LExpr::Local(s), Some(c)) = (&**a, as_const_idx(b)) {
                    if *s == lv {
                        return Foot::Affine(c);
                    }
                }
                if let (Some(c), LExpr::Local(s)) = (as_const_idx(a), &**b) {
                    if *s == lv {
                        return Foot::Affine(c);
                    }
                }
            }
            LExpr::Bin(BinOp::Sub, a, b) => {
                if let (LExpr::Local(s), Some(c)) = (&**a, as_const_idx(b)) {
                    if *s == lv {
                        return Foot::Affine(-c);
                    }
                }
            }
            _ => {}
        }
    }
    if !expr_mentions_local(e) {
        return Foot::Invariant;
    }
    Foot::Unknown
}

// ---------------------------------------------------------------------
// Function summaries
// ---------------------------------------------------------------------

/// One shared access inside a function, with the locks the function
/// itself holds around it. Spans are `(line, col)` keys so the set is
/// ordered.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SumAcc {
    gid: u16,
    write: bool,
    foot: Foot,
    locks: BTreeSet<u32>,
    span: (u32, u32),
}

/// `(outer lock, inner lock, outer span, inner span)` — inner acquired
/// while outer is held.
type LockEdge = (u32, u32, (u32, u32), (u32, u32));

#[derive(Debug, Default, Clone, PartialEq)]
struct FnSum {
    accs: BTreeSet<SumAcc>,
    /// Task sites this function spawns (directly or via callees).
    spawns: BTreeSet<u16>,
    /// Critical sections acquired anywhere inside (lock, span).
    acquires: BTreeSet<(u32, (u32, u32))>,
    lock_edges: BTreeSet<LockEdge>,
    has_barrier: bool,
    has_shared: bool,
}

fn fn_summaries(p: &LProgram) -> Vec<FnSum> {
    let mut sums = vec![FnSum::default(); p.funcs.len()];
    // Recursion converges because every field only grows and spans/gids
    // are finite.
    loop {
        let mut changed = false;
        for fid in 0..p.funcs.len() {
            let mut cur = FnSum::default();
            let mut held: Vec<(u32, (u32, u32))> = Vec::new();
            sum_stmts(&p.funcs[fid].body, &sums, &mut held, &mut cur);
            if cur != sums[fid] {
                sums[fid] = cur;
                changed = true;
            }
        }
        if !changed {
            return sums;
        }
    }
}

fn sum_stmts(stmts: &[LStmt], sums: &[FnSum], held: &mut Vec<(u32, (u32, u32))>, out: &mut FnSum) {
    for s in stmts {
        match s {
            LStmt::SetLocal { val, .. } => sum_expr(val, sums, held, out),
            LStmt::SetGlobal { gid, val, span, .. } => {
                sum_expr(val, sums, held, out);
                sum_acc(out, *gid, true, Foot::Scalar, held, *span);
            }
            LStmt::SetElem {
                gid,
                idx,
                val,
                span,
                ..
            } => {
                sum_expr(idx, sums, held, out);
                sum_expr(val, sums, held, out);
                sum_acc(out, *gid, true, classify_idx(idx, None), held, *span);
            }
            LStmt::If { cond, then_, else_ } => {
                sum_expr(cond, sums, held, out);
                sum_stmts(then_, sums, held, out);
                sum_stmts(else_, sums, held, out);
            }
            LStmt::While { cond, body } => {
                sum_expr(cond, sums, held, out);
                sum_stmts(body, sums, held, out);
            }
            LStmt::Return(v) => {
                if let Some(v) = v {
                    sum_expr(v, sums, held, out);
                }
            }
            LStmt::Expr(e) => sum_expr(e, sums, held, out),
            LStmt::Print(parts) => {
                for p in parts {
                    if let LPrint::Val(e) = p {
                        sum_expr(e, sums, held, out);
                    }
                }
            }
            // Regions are analyzed on their own; a function containing
            // one is only callable from sequential context anyway.
            LStmt::Parallel { .. } => {}
            LStmt::WsFor(w) => {
                sum_expr(&w.lo, sums, held, out);
                sum_expr(&w.hi, sums, held, out);
                sum_stmts(&w.body, sums, held, out);
            }
            LStmt::Single { body, .. } => sum_stmts(body, sums, held, out),
            LStmt::Critical {
                lock, body, span, ..
            } => {
                for &(l, ls) in held.iter() {
                    out.lock_edges.insert((l, *lock, ls, sk(*span)));
                }
                out.acquires.insert((*lock, sk(*span)));
                held.push((*lock, sk(*span)));
                sum_stmts(body, sums, held, out);
                held.pop();
            }
            LStmt::Barrier(_) => out.has_barrier = true,
            LStmt::Task { site } => {
                out.spawns.insert(*site);
            }
            LStmt::Taskwait => {}
        }
    }
}

fn sum_expr(e: &LExpr, sums: &[FnSum], held: &mut Vec<(u32, (u32, u32))>, out: &mut FnSum) {
    match e {
        LExpr::Num(_) | LExpr::Local(_) => {}
        LExpr::Global(gid, span) => sum_acc(out, *gid, false, Foot::Scalar, held, *span),
        LExpr::Elem(gid, idx, span) => {
            sum_expr(idx, sums, held, out);
            sum_acc(out, *gid, false, classify_idx(idx, None), held, *span);
        }
        LExpr::Un(_, a) => sum_expr(a, sums, held, out),
        LExpr::Bin(_, a, b) => {
            sum_expr(a, sums, held, out);
            sum_expr(b, sums, held, out);
        }
        LExpr::Call(fid, args) => {
            for a in args {
                sum_expr(a, sums, held, out);
            }
            let callee = sums[*fid as usize].clone();
            let cur: BTreeSet<u32> = held.iter().map(|&(l, _)| l).collect();
            for acc in &callee.accs {
                let mut locks = acc.locks.clone();
                locks.extend(cur.iter().copied());
                out.accs.insert(SumAcc {
                    locks,
                    ..acc.clone()
                });
            }
            out.spawns.extend(callee.spawns.iter().copied());
            out.acquires.extend(callee.acquires.iter().copied());
            out.lock_edges.extend(callee.lock_edges.iter().copied());
            for &(l, ls) in held.iter() {
                for &(m, ms) in &callee.acquires {
                    out.lock_edges.insert((l, m, ls, ms));
                }
            }
            out.has_barrier |= callee.has_barrier;
            out.has_shared |= callee.has_shared;
        }
        LExpr::Builtin(_, args) => {
            for a in args {
                sum_expr(a, sums, held, out);
            }
        }
    }
}

fn sum_acc(
    out: &mut FnSum,
    gid: u16,
    write: bool,
    foot: Foot,
    held: &[(u32, (u32, u32))],
    span: Span,
) {
    out.has_shared = true;
    out.accs.insert(SumAcc {
        gid,
        write,
        foot,
        locks: held.iter().map(|&(l, _)| l).collect(),
        span: sk(span),
    });
}

// ---------------------------------------------------------------------
// Region walk
// ---------------------------------------------------------------------

/// How many threads execute a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mult {
    /// Every thread of the team.
    Team,
    /// One thread per work-shared iteration.
    PerIter,
    /// Thread 0 only (`single` body).
    One,
    /// A task instance.
    Task,
}

/// Context of a task instance's accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TaskCtx {
    site: u16,
    /// More than one instance can exist (spawned in a loop, spawned
    /// from a function or task body, or several lexical spawn sites).
    multi: bool,
    /// When the *only* spawn is in a `single` block: that block's id —
    /// program order and `taskwait` inside the block order the task
    /// against the block's other statements.
    scope: Option<u32>,
    spawn_seq: u32,
    spawn_epoch: u32,
    /// Accesses in phases strictly before this are barrier-ordered
    /// before the spawn (and so before the task).
    spawn_phase: u32,
}

/// One shared access inside a region (or a task it spawns).
#[derive(Debug, Clone)]
struct Acc {
    gid: u16,
    write: bool,
    foot: Foot,
    phase: u32,
    mult: Mult,
    locks: BTreeSet<u32>,
    single: Option<u32>,
    task: Option<TaskCtx>,
    seq: u32,
    epoch: u32,
    span: Span,
}

/// Where a task site gets spawned (merged over all spawn statements).
#[derive(Debug, Clone, Copy)]
struct SpawnCtx {
    /// `single` block id when spawned directly in a region's `single`.
    scope: Option<u32>,
    one: bool,
    in_loop: bool,
    /// Registered from a function or task body: instance count unknown.
    from_indirect: bool,
    seq: u32,
    epoch: u32,
    phase: u32,
}

struct Rw<'a> {
    p: &'a LProgram,
    sums: &'a [FnSum],
    accs: Vec<Acc>,
    lints: &'a mut Vec<Lint>,
    edges: &'a mut BTreeSet<LockEdge>,
    lock_names: &'a mut BTreeMap<u32, Option<String>>,
    spawn_ctxs: HashMap<u16, Vec<SpawnCtx>>,
    /// `seq` values at which some task got spawned (dead-barrier check).
    spawn_seqs: Vec<u32>,
    barriers: Vec<(u32, Span)>,
    // walk state
    phase: u32,
    seq: u32,
    epoch: u32,
    mult: Mult,
    locks: Vec<(u32, (u32, u32))>,
    single: Option<u32>,
    next_single: u32,
    while_depth: u32,
    loop_var: Option<u16>,
    task: Option<TaskCtx>,
    red_gids: Vec<(u16, RedOp, Span)>,
    red_slots: Vec<(u16, RedOp, Span)>,
    /// Span of the innermost spanned statement being walked — anchors
    /// slot-level findings (locals carry no expression spans).
    stmt_span: Option<Span>,
    /// Slots read by enclosing `if` conditions (min/max guard pattern).
    guards: Vec<u16>,
    privs: HashSet<u16>,
    tainted: HashSet<u16>,
}

fn analyze_region(
    p: &LProgram,
    sums: &[FnSum],
    r: &LRegion,
    lints: &mut Vec<Lint>,
    edges: &mut BTreeSet<LockEdge>,
    lock_names: &mut BTreeMap<u32, Option<String>>,
) {
    let mut w = Rw {
        p,
        sums,
        accs: Vec::new(),
        lints,
        edges,
        lock_names,
        spawn_ctxs: HashMap::new(),
        spawn_seqs: Vec::new(),
        barriers: Vec::new(),
        phase: 0,
        seq: 0,
        epoch: 0,
        mult: Mult::Team,
        locks: Vec::new(),
        single: None,
        next_single: 0,
        while_depth: 0,
        loop_var: None,
        task: None,
        red_gids: Vec::new(),
        red_slots: Vec::new(),
        stmt_span: None,
        guards: Vec::new(),
        privs: r.privatized.iter().copied().collect(),
        tainted: HashSet::new(),
    };
    for rs in &r.reds {
        w.red_gids.push((rs.gid, rs.op, rs.span));
        w.red_slots.push((rs.slot, rs.op, rs.span));
    }
    w.stmts(&r.body);

    // Saturate the reachable task sites (recursion: a site's body may
    // spawn more sites, directly or through calls), then walk each
    // reachable body once as a task instance.
    let mut queue: Vec<u16> = w.spawn_ctxs.keys().copied().collect();
    let mut scanned: BTreeSet<u16> = BTreeSet::new();
    while let Some(site) = queue.pop() {
        if !scanned.insert(site) {
            continue;
        }
        let mut found: BTreeSet<u16> = BTreeSet::new();
        scan_spawns(&p.tasks[site as usize].body, sums, &mut found);
        for s2 in found {
            w.spawn_ctxs.entry(s2).or_default().push(SpawnCtx {
                scope: None,
                one: false,
                in_loop: false,
                from_indirect: true,
                seq: 0,
                epoch: 0,
                phase: 0,
            });
            queue.push(s2);
        }
    }
    let sites: Vec<(u16, Vec<SpawnCtx>)> = {
        let mut v: Vec<_> = w.spawn_ctxs.drain().collect();
        v.sort_by_key(|(s, _)| *s);
        v
    };
    for (site, ctxs) in sites {
        let multi = ctxs.len() > 1 || ctxs.iter().any(|c| c.from_indirect || c.in_loop || !c.one);
        let solo = (ctxs.len() == 1 && !multi).then(|| ctxs[0]);
        let ctx = TaskCtx {
            site,
            multi,
            scope: solo.and_then(|c| c.scope),
            spawn_seq: solo.map_or(0, |c| c.seq),
            spawn_epoch: solo.map_or(0, |c| c.epoch),
            spawn_phase: ctxs.iter().map(|c| c.phase).min().unwrap_or(0),
        };
        w.task = Some(ctx);
        w.mult = Mult::Task;
        w.locks.clear();
        w.single = None;
        w.epoch = 0;
        w.red_gids.clear();
        w.red_slots.clear();
        w.stmts(&p.tasks[site as usize].body);
    }

    let accs = std::mem::take(&mut w.accs);
    pair_lints(p, &accs, w.lints);
    for &(bseq, bspan) in &w.barriers {
        let live = accs.iter().any(|a| a.task.is_none() && a.seq > bseq)
            || w.spawn_seqs.iter().any(|&s| s > bseq);
        if !live {
            w.lints.push(
                Lint::new(
                    LintCode::DeadSync,
                    bspan,
                    "barrier orders no shared access: nothing after it in this region \
                     touches shared data (it still costs a full round of sync traffic)",
                )
                .with_related(r.span, "in the parallel region starting here".to_string()),
            );
        }
    }
}

fn scan_spawns(stmts: &[LStmt], sums: &[FnSum], out: &mut BTreeSet<u16>) {
    for s in stmts {
        match s {
            LStmt::Task { site } => {
                out.insert(*site);
            }
            LStmt::If { cond, then_, else_ } => {
                scan_spawn_expr(cond, sums, out);
                scan_spawns(then_, sums, out);
                scan_spawns(else_, sums, out);
            }
            LStmt::While { cond, body } => {
                scan_spawn_expr(cond, sums, out);
                scan_spawns(body, sums, out);
            }
            LStmt::SetLocal { val, .. } | LStmt::SetGlobal { val, .. } => {
                scan_spawn_expr(val, sums, out)
            }
            LStmt::SetElem { idx, val, .. } => {
                scan_spawn_expr(idx, sums, out);
                scan_spawn_expr(val, sums, out);
            }
            LStmt::Return(Some(e)) | LStmt::Expr(e) => scan_spawn_expr(e, sums, out),
            LStmt::Print(parts) => {
                for p in parts {
                    if let LPrint::Val(e) = p {
                        scan_spawn_expr(e, sums, out);
                    }
                }
            }
            LStmt::Single { body, .. } | LStmt::Critical { body, .. } => {
                scan_spawns(body, sums, out)
            }
            LStmt::WsFor(w) => scan_spawns(&w.body, sums, out),
            _ => {}
        }
    }
}

fn scan_spawn_expr(e: &LExpr, sums: &[FnSum], out: &mut BTreeSet<u16>) {
    match e {
        LExpr::Call(fid, args) => {
            for a in args {
                scan_spawn_expr(a, sums, out);
            }
            out.extend(sums[*fid as usize].spawns.iter().copied());
        }
        LExpr::Un(_, a) | LExpr::Elem(_, a, _) => scan_spawn_expr(a, sums, out),
        LExpr::Bin(_, a, b) => {
            scan_spawn_expr(a, sums, out);
            scan_spawn_expr(b, sums, out);
        }
        LExpr::Builtin(_, args) => {
            for a in args {
                scan_spawn_expr(a, sums, out);
            }
        }
        _ => {}
    }
}

impl Rw<'_> {
    fn stmts(&mut self, stmts: &[LStmt]) {
        for s in stmts {
            self.seq += 1;
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &LStmt) {
        self.stmt_span = match s {
            LStmt::SetLocal { span, .. }
            | LStmt::SetGlobal { span, .. }
            | LStmt::SetElem { span, .. } => Some(*span),
            _ => None,
        };
        match s {
            LStmt::SetLocal { slot, val, .. } => {
                self.check_red_slot_write(*slot, val);
                let allow = self
                    .red_slots
                    .iter()
                    .any(|&(rs, _, _)| rs == *slot)
                    .then_some(*slot);
                self.expr(val, allow);
                if expr_tainted(val, &self.tainted) {
                    self.tainted.insert(*slot);
                } else {
                    self.tainted.remove(slot);
                }
            }
            LStmt::SetGlobal { gid, val, span, .. } => {
                self.expr(val, None);
                self.check_escape(val, *span);
                if !self.check_red_gid(*gid, *span) {
                    self.record(*gid, true, Foot::Scalar, *span);
                }
            }
            LStmt::SetElem {
                gid,
                idx,
                val,
                span,
                ..
            } => {
                self.expr(idx, None);
                self.expr(val, None);
                self.check_escape(val, *span);
                let foot = classify_idx(idx, self.loop_var);
                self.record(*gid, true, foot, *span);
            }
            LStmt::If { cond, then_, else_ } => {
                self.expr(cond, None);
                let mut cond_slots = Vec::new();
                collect_local_reads(cond, &mut cond_slots);
                let n = cond_slots.len();
                self.guards.extend(cond_slots);
                self.stmts(then_);
                self.stmts(else_);
                self.guards.truncate(self.guards.len() - n);
            }
            LStmt::While { cond, body } => {
                self.expr(cond, None);
                self.while_depth += 1;
                self.stmts(body);
                self.while_depth -= 1;
            }
            LStmt::Return(v) => {
                if let Some(v) = v {
                    self.expr(v, None);
                }
            }
            LStmt::Expr(e) => self.expr(e, None),
            LStmt::Print(parts) => {
                for p in parts {
                    if let LPrint::Val(e) = p {
                        self.expr(e, None);
                    }
                }
            }
            LStmt::Parallel { .. } => {
                // Nested regions are a compile error; nothing to do.
            }
            LStmt::WsFor(w) => self.ws_for(w),
            LStmt::Single { body, span } => {
                let sid = self.next_single;
                self.next_single += 1;
                let old_single = self.single.replace(sid);
                let old_mult = std::mem::replace(&mut self.mult, Mult::One);
                let before = self.accs.len();
                let lints_before = self.lints.len();
                self.stmts(body);
                self.single = old_single;
                self.mult = old_mult;
                self.phase += 1; // implied barrier
                                 // A non-empty `single` around purely-private work changes
                                 // only thread 0's private copies — almost certainly a
                                 // shared/private confusion. (An *empty* single is a
                                 // barrier idiom; a printing single is a print-once idiom;
                                 // both stay silent.)
                let touched = self.accs.len() > before
                    || self.lints.len() > lints_before
                    || body_spawns(body)
                    || body_prints(body);
                if !body.is_empty() && !touched {
                    self.lints.push(Lint::new(
                        LintCode::DeadSync,
                        *span,
                        "`single` around purely-private work: the body touches no shared \
                         data, so only thread 0's private copies change (and every thread \
                         pays the implied barrier)",
                    ));
                }
            }
            LStmt::Critical {
                lock,
                body,
                name,
                span,
            } => {
                self.lock_names.entry(*lock).or_insert_with(|| name.clone());
                for &(l, ls) in &self.locks {
                    self.edges.insert((l, *lock, ls, sk(*span)));
                }
                self.locks.push((*lock, sk(*span)));
                let before = self.accs.len();
                let lints_before = self.lints.len();
                self.stmts(body);
                self.locks.pop();
                let touched = self.accs.len() > before
                    || self.lints.len() > lints_before
                    || body_spawns(body);
                if !touched {
                    self.lints.push(Lint::new(
                        LintCode::DeadSync,
                        *span,
                        "critical section protects no shared access — the lock round-trip \
                         buys nothing",
                    ));
                }
            }
            LStmt::Barrier(span) => {
                self.phase += 1;
                if self.while_depth == 0 && self.task.is_none() {
                    self.barriers.push((self.seq, *span));
                }
            }
            LStmt::Task { site } => {
                self.spawn_seqs.push(self.seq);
                self.spawn_ctxs.entry(*site).or_default().push(SpawnCtx {
                    scope: self.single,
                    one: matches!(self.mult, Mult::One),
                    in_loop: self.while_depth > 0 || self.loop_var.is_some(),
                    from_indirect: self.task.is_some(),
                    seq: self.seq,
                    epoch: self.epoch,
                    phase: self.phase,
                });
            }
            LStmt::Taskwait => self.epoch += 1,
        }
    }

    fn ws_for(&mut self, w: &WsFor) {
        self.expr(&w.lo, None);
        self.expr(&w.hi, None);
        for rs in &w.reds {
            self.red_gids.push((rs.gid, rs.op, rs.span));
            self.red_slots.push((rs.slot, rs.op, rs.span));
        }
        let old_lv = self.loop_var.replace(w.var);
        let old_mult = std::mem::replace(&mut self.mult, Mult::PerIter);
        self.tainted.insert(w.var);
        self.stmts(&w.body);
        self.loop_var = old_lv;
        self.mult = old_mult;
        for _ in &w.reds {
            self.red_gids.pop();
            self.red_slots.pop();
        }
        if w.barrier_after || w.reset_after {
            self.phase += 1; // implied end-of-loop barrier
        }
    }

    fn expr(&mut self, e: &LExpr, allow_red: Option<u16>) {
        match e {
            LExpr::Num(_) => {}
            LExpr::Local(slot) => self.check_red_slot_read(*slot, allow_red),
            LExpr::Global(gid, span) => {
                if !self.check_red_gid(*gid, *span) {
                    self.record(*gid, false, Foot::Scalar, *span);
                }
            }
            LExpr::Elem(gid, idx, span) => {
                self.expr(idx, allow_red);
                let foot = classify_idx(idx, self.loop_var);
                self.record(*gid, false, foot, *span);
            }
            LExpr::Un(_, a) => self.expr(a, allow_red),
            LExpr::Bin(_, a, b) => {
                self.expr(a, allow_red);
                self.expr(b, allow_red);
            }
            LExpr::Call(fid, args) => {
                for a in args {
                    self.expr(a, allow_red);
                }
                self.instantiate(*fid);
            }
            LExpr::Builtin(_, args) => {
                for a in args {
                    self.expr(a, allow_red);
                }
            }
        }
    }

    /// Splice a callee's summarized accesses into this walk.
    fn instantiate(&mut self, fid: u16) {
        let sums = self.sums;
        let sum = &sums[fid as usize];
        let cur: BTreeSet<u32> = self.locks.iter().map(|&(l, _)| l).collect();
        let callee_accs: Vec<SumAcc> = sum.accs.iter().cloned().collect();
        let fname = self.p.funcs[fid as usize].name.clone();
        // A barrier inside the callee would order its accesses against
        // the caller's — not representable in the linear phase walk, so
        // drop the callee's accesses (provable findings only) and start
        // a fresh phase after the call.
        let drop_accs = sum.has_barrier;
        let hb = sum.has_barrier;
        for acc in callee_accs {
            if let Some(&(_, _, rspan)) = self.red_gids.iter().find(|&&(g, _, _)| g == acc.gid) {
                let name = gname(self.p, acc.gid).to_string();
                self.lints.push(
                    Lint::new(
                        LintCode::ReductionMisuse,
                        unsk(acc.span),
                        format!(
                            "function `{fname}` {} reduction variable `{name}` directly \
                             while the reduction is active — partial per-thread \
                             accumulators are not yet combined",
                            if acc.write { "writes" } else { "reads" },
                        ),
                    )
                    .with_related(rspan, "reduction declared here".to_string()),
                );
                continue;
            }
            if drop_accs {
                continue;
            }
            let mut locks = acc.locks.clone();
            locks.extend(cur.iter().copied());
            self.accs.push(Acc {
                gid: acc.gid,
                write: acc.write,
                foot: acc.foot,
                phase: self.phase,
                mult: self.mult,
                locks,
                single: self.single,
                task: self.task,
                seq: self.seq,
                epoch: self.epoch,
                span: unsk(acc.span),
            });
        }
        for &(l, ls) in &self.locks {
            for &(m, ms) in &sum.acquires {
                self.edges.insert((l, m, ls, ms));
            }
        }
        self.edges.extend(sum.lock_edges.iter().copied());
        for &site in &sum.spawns {
            self.spawn_seqs.push(self.seq);
            self.spawn_ctxs.entry(site).or_default().push(SpawnCtx {
                scope: None,
                one: false,
                in_loop: false,
                from_indirect: true,
                seq: self.seq,
                epoch: self.epoch,
                phase: self.phase,
            });
        }
        if hb {
            self.phase += 1;
        }
    }

    fn record(&mut self, gid: u16, write: bool, foot: Foot, span: Span) {
        self.accs.push(Acc {
            gid,
            write,
            foot,
            phase: self.phase,
            mult: self.mult,
            locks: self.locks.iter().map(|&(l, _)| l).collect(),
            single: self.single,
            task: self.task,
            seq: self.seq,
            epoch: self.epoch,
            span,
        });
    }

    /// Direct access to a gid under an active reduction → OMP203.
    /// Returns true when the access was reported (and must not also be
    /// recorded as a plain access).
    fn check_red_gid(&mut self, gid: u16, span: Span) -> bool {
        if let Some(&(_, _, rspan)) = self.red_gids.iter().find(|&&(g, _, _)| g == gid) {
            let name = gname(self.p, gid).to_string();
            self.lints.push(
                Lint::new(
                    LintCode::ReductionMisuse,
                    span,
                    format!("`{name}` is accessed directly while a reduction on it is active"),
                )
                .with_related(rspan, "reduction declared here".to_string()),
            );
            return true;
        }
        false
    }

    /// `slot = <val>` where slot is a reduction accumulator: `+`/`*`
    /// reductions must keep the `x = x op e` shape; `min`/`max` writes
    /// must sit under a comparison that read the accumulator.
    fn check_red_slot_write(&mut self, slot: u16, val: &LExpr) {
        use crate::ast::BinOp;
        let Some(&(_, op, rspan)) = self.red_slots.iter().find(|&&(s, _, _)| s == slot) else {
            return;
        };
        let ok = match op {
            RedOp::Sum | RedOp::Prod => {
                let (a, b) = match op {
                    RedOp::Sum => (BinOp::Add, BinOp::Sub),
                    _ => (BinOp::Mul, BinOp::Div),
                };
                match val {
                    LExpr::Bin(o, l, r) if *o == a => {
                        matches!(**l, LExpr::Local(s) if s == slot)
                            || matches!(**r, LExpr::Local(s) if s == slot)
                    }
                    LExpr::Bin(o, l, _) if *o == b => {
                        matches!(**l, LExpr::Local(s) if s == slot)
                    }
                    _ => false,
                }
            }
            // min/max: accept any write guarded by a comparison that
            // read the accumulator (`if (r > m) m = r;` — jacobi).
            RedOp::Min | RedOp::Max => self.guards.contains(&slot),
        };
        if !ok {
            let opname = match op {
                RedOp::Sum => "+",
                RedOp::Prod => "*",
                RedOp::Min => "min",
                RedOp::Max => "max",
            };
            self.lints.push(
                Lint::new(
                    LintCode::ReductionMisuse,
                    self.stmt_span.unwrap_or(rspan),
                    format!(
                        "reduction accumulator is assigned outside its `{opname}` \
                         combining pattern — the per-thread partial result is \
                         overwritten, not combined",
                    ),
                )
                .with_related(rspan, "reduction declared here".to_string()),
            );
        }
    }

    /// Reading a `+`/`*` accumulator outside its own combining statement
    /// observes an uncombined per-thread partial sum.
    fn check_red_slot_read(&mut self, slot: u16, allow_red: Option<u16>) {
        if allow_red == Some(slot) || self.guards.contains(&slot) {
            return;
        }
        if let Some(&(_, op, rspan)) = self.red_slots.iter().find(|&&(s, _, _)| s == slot) {
            if matches!(op, RedOp::Sum | RedOp::Prod) {
                self.lints.push(
                    Lint::new(
                        LintCode::ReductionMisuse,
                        self.stmt_span.unwrap_or(rspan),
                        "reduction accumulator is read outside its combining operation — \
                         it holds an uncombined per-thread partial value there",
                    )
                    .with_related(rspan, "reduction declared here".to_string()),
                );
            }
        }
    }

    /// A thread-dependent value held in a privatized slot flowing into
    /// shared storage unprotected → OMP204.
    fn check_escape(&mut self, val: &LExpr, span: Span) {
        if !self.locks.is_empty() || self.single.is_some() {
            return;
        }
        let mut reads = Vec::new();
        collect_local_reads(val, &mut reads);
        if reads
            .iter()
            .any(|s| self.privs.contains(s) && self.tainted.contains(s))
        {
            self.lints.push(Lint::new(
                LintCode::PrivateEscape,
                span,
                "a private copy holding a thread-dependent value is stored to shared \
                 memory unprotected — each thread overwrites the cell with its own \
                 diverged copy (last writer wins, nondeterministically)",
            ));
        }
    }
}

fn collect_local_reads(e: &LExpr, out: &mut Vec<u16>) {
    match e {
        LExpr::Local(s) => out.push(*s),
        LExpr::Elem(_, idx, _) => collect_local_reads(idx, out),
        LExpr::Un(_, a) => collect_local_reads(a, out),
        LExpr::Bin(_, a, b) => {
            collect_local_reads(a, out);
            collect_local_reads(b, out);
        }
        LExpr::Call(_, args) | LExpr::Builtin(_, args) => {
            for a in args {
                collect_local_reads(a, out);
            }
        }
        LExpr::Num(_) | LExpr::Global(..) => {}
    }
}

fn expr_tainted(e: &LExpr, tainted: &HashSet<u16>) -> bool {
    match e {
        LExpr::Num(_) | LExpr::Global(..) => false,
        LExpr::Local(s) => tainted.contains(s),
        LExpr::Elem(_, idx, _) => expr_tainted(idx, tainted),
        LExpr::Un(_, a) => expr_tainted(a, tainted),
        LExpr::Bin(_, a, b) => expr_tainted(a, tainted) || expr_tainted(b, tainted),
        LExpr::Call(..) => false,
        LExpr::Builtin(b, args) => {
            matches!(b, Builtin::ThreadNum | Builtin::Wtime)
                || args.iter().any(|a| expr_tainted(a, tainted))
        }
    }
}

fn body_spawns(stmts: &[LStmt]) -> bool {
    stmts.iter().any(|s| match s {
        LStmt::Task { .. } => true,
        LStmt::If { then_, else_, .. } => body_spawns(then_) || body_spawns(else_),
        LStmt::While { body, .. } => body_spawns(body),
        LStmt::Single { body, .. } | LStmt::Critical { body, .. } => body_spawns(body),
        LStmt::WsFor(w) => body_spawns(&w.body),
        _ => false,
    })
}

fn body_prints(stmts: &[LStmt]) -> bool {
    stmts.iter().any(|s| match s {
        LStmt::Print(_) => true,
        LStmt::If { then_, else_, .. } => body_prints(then_) || body_prints(else_),
        LStmt::While { body, .. } => body_prints(body),
        LStmt::Single { body, .. } | LStmt::Critical { body, .. } => body_prints(body),
        LStmt::WsFor(w) => body_prints(&w.body),
        _ => false,
    })
}

// ---------------------------------------------------------------------
// Pairwise race detection
// ---------------------------------------------------------------------

fn pair_lints(p: &LProgram, accs: &[Acc], lints: &mut Vec<Lint>) {
    // Self-races: one statement, many executors, same cell.
    for a in accs {
        if !a.write || !a.locks.is_empty() || a.single.is_some() {
            continue;
        }
        let (racy, who) = match a.mult {
            Mult::Team => (
                self_overlap(a.foot),
                "every thread of the team executes this write",
            ),
            Mult::PerIter => (
                self_overlap(a.foot),
                "work-shared iterations on different threads all write this location",
            ),
            Mult::One => (false, ""),
            Mult::Task => (
                a.task.is_some_and(|t| t.multi) && self_overlap(a.foot),
                "multiple task instances execute this write concurrently",
            ),
        };
        if racy {
            let mut lint = Lint::new(
                LintCode::SharedWriteRace,
                a.span,
                format!(
                    "unsynchronized write to shared `{}`: {who}, with no `critical`, \
                     `single` or `reduction` protecting it",
                    gname(p, a.gid),
                ),
            );
            if let (Mult::Task, Some(t)) = (a.mult, a.task) {
                lint = lint.with_related(
                    p.tasks[t.site as usize].span,
                    "the racing task instances come from here".to_string(),
                );
            }
            lints.push(lint);
        }
    }

    // Cross-statement pairs.
    for (i, a) in accs.iter().enumerate() {
        for b in &accs[i + 1..] {
            if !conflict(a, b) {
                continue;
            }
            let name = gname(p, a.gid);
            if a.write && b.write {
                let (x, y) = if sk(a.span) <= sk(b.span) {
                    (a, b)
                } else {
                    (b, a)
                };
                if sk(x.span) == sk(y.span) {
                    continue; // same statement: the self-race rule owns it
                }
                lints.push(
                    Lint::new(
                        LintCode::SharedWriteRace,
                        x.span,
                        format!(
                            "two unordered writes to shared `{name}` can land on the \
                             same location from different threads",
                        ),
                    )
                    .with_related(y.span, "conflicting write".to_string()),
                );
            } else {
                let (wr, rd) = if a.write { (a, b) } else { (b, a) };
                lints.push(
                    Lint::new(
                        LintCode::ReadWriteRace,
                        wr.span,
                        format!(
                            "write to shared `{name}` races with an unordered read — no \
                             barrier separates them on any path",
                        ),
                    )
                    .with_related(rd.span, "unordered read".to_string()),
                );
            }
        }
    }
}

fn conflict(a: &Acc, b: &Acc) -> bool {
    if a.gid != b.gid || (!a.write && !b.write) {
        return false;
    }
    if !a.locks.is_disjoint(&b.locks) {
        return false; // a common lock serializes them
    }
    if !overlap(a.foot, b.foot) {
        return false;
    }
    match (a.task, b.task) {
        (None, None) => {
            if a.phase != b.phase {
                return false; // a barrier orders them
            }
            // All `single` bodies run on thread 0: program-ordered.
            !(a.single.is_some() && b.single.is_some())
        }
        (Some(t), Some(u)) => {
            // Two accesses of the same single-instance task body are
            // program-ordered on the executing thread.
            !(t.site == u.site && !t.multi && !u.multi)
        }
        (Some(t), None) | (None, Some(t)) => {
            let n = if a.task.is_some() { b } else { a };
            // Barrier-ordered before the spawn?
            if n.phase < t.spawn_phase {
                return false;
            }
            // In the spawning `single` block: before the spawn, or
            // after a taskwait that joined the task.
            if let Some(scope) = t.scope {
                if n.single == Some(scope) && (n.seq < t.spawn_seq || n.epoch > t.spawn_epoch) {
                    return false;
                }
            }
            true
        }
    }
}

// ---------------------------------------------------------------------
// Lock order (OMP205)
// ---------------------------------------------------------------------

fn lock_order_lints(
    edges: &BTreeSet<LockEdge>,
    lock_names: &BTreeMap<u32, Option<String>>,
    lints: &mut Vec<Lint>,
) {
    let describe = |l: u32| -> String {
        match lock_names.get(&l) {
            Some(Some(n)) => format!("`critical({n})`"),
            _ => "the unnamed `critical`".to_string(),
        }
    };
    let mut adj: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for &(a, b, _, _) in edges {
        if a == b {
            continue;
        }
        adj.entry(a).or_default().insert(b);
    }
    // Self-nesting deadlocks immediately (the runtime lock is not
    // reentrant).
    let mut seen_self: BTreeSet<u32> = BTreeSet::new();
    for &(a, b, os, is) in edges {
        if a == b && seen_self.insert(a) {
            lints.push(
                Lint::new(
                    LintCode::LockOrder,
                    unsk(is),
                    format!(
                        "{} is entered while already held — self-deadlock (the lock is \
                         not reentrant)",
                        describe(a)
                    ),
                )
                .with_related(unsk(os), "outer acquisition".to_string()),
            );
        }
    }
    // a→b plus a path b→…→a means two threads can deadlock acquiring
    // in opposite orders.
    let reachable = |from: u32, to: u32| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if !seen.insert(x) {
                continue;
            }
            if let Some(next) = adj.get(&x) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut reported: BTreeSet<(u32, u32)> = BTreeSet::new();
    for &(a, b, _os, is) in edges {
        if a == b || !reachable(b, a) {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if !reported.insert(key) {
            continue;
        }
        // Find the reverse witness for the related span.
        let rev = edges
            .iter()
            .find(|&&(x, y, _, _)| x == b && y == a)
            .map(|&(_, _, _, ris)| ris);
        let mut l = Lint::new(
            LintCode::LockOrder,
            unsk(is),
            format!(
                "{} nests inside {} here, but the opposite order exists elsewhere — two \
                 threads can deadlock",
                describe(b),
                describe(a),
            ),
        );
        if let Some(ris) = rev {
            l = l.with_related(unsk(ris), "conflicting nesting".to_string());
        }
        lints.push(l);
    }
}

// ---------------------------------------------------------------------
// Dead / sequential criticals (OMP206) and reachability
// ---------------------------------------------------------------------

fn collect_calls(stmts: &[LStmt], out: &mut BTreeSet<u16>) {
    fn expr(e: &LExpr, out: &mut BTreeSet<u16>) {
        match e {
            LExpr::Call(fid, args) => {
                out.insert(*fid);
                for a in args {
                    expr(a, out);
                }
            }
            LExpr::Un(_, a) | LExpr::Elem(_, a, _) => expr(a, out),
            LExpr::Bin(_, a, b) => {
                expr(a, out);
                expr(b, out);
            }
            LExpr::Builtin(_, args) => {
                for a in args {
                    expr(a, out);
                }
            }
            _ => {}
        }
    }
    for s in stmts {
        match s {
            LStmt::SetLocal { val, .. } | LStmt::SetGlobal { val, .. } => expr(val, out),
            LStmt::SetElem { idx, val, .. } => {
                expr(idx, out);
                expr(val, out);
            }
            LStmt::If { cond, then_, else_ } => {
                expr(cond, out);
                collect_calls(then_, out);
                collect_calls(else_, out);
            }
            LStmt::While { cond, body } => {
                expr(cond, out);
                collect_calls(body, out);
            }
            LStmt::Return(Some(e)) | LStmt::Expr(e) => expr(e, out),
            LStmt::Print(parts) => {
                for p in parts {
                    if let LPrint::Val(e) = p {
                        expr(e, out);
                    }
                }
            }
            LStmt::Single { body, .. } | LStmt::Critical { body, .. } => collect_calls(body, out),
            LStmt::WsFor(w) => {
                expr(&w.lo, out);
                expr(&w.hi, out);
                collect_calls(&w.body, out);
            }
            _ => {}
        }
    }
}

fn closure(p: &LProgram, seeds: BTreeSet<u16>) -> BTreeSet<u16> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<u16> = seeds.into_iter().collect();
    while let Some(f) = stack.pop() {
        if !seen.insert(f) {
            continue;
        }
        let mut calls = BTreeSet::new();
        collect_calls(&p.funcs[f as usize].body, &mut calls);
        stack.extend(calls);
    }
    seen
}

/// Functions reachable from parallel context (region or task bodies).
fn par_reachable(p: &LProgram) -> BTreeSet<u16> {
    let mut seeds = BTreeSet::new();
    for r in &p.regions {
        collect_calls(&r.body, &mut seeds);
    }
    for t in &p.tasks {
        collect_calls(&t.body, &mut seeds);
    }
    closure(p, seeds)
}

/// Criticals inside par-reachable functions whose bodies touch no
/// shared data. (Region/task bodies are covered during the region walk.)
fn dead_critical_lints(p: &LProgram, sums: &[FnSum], par: &BTreeSet<u16>, lints: &mut Vec<Lint>) {
    fn touches_shared(stmts: &[LStmt], sums: &[FnSum]) -> bool {
        fn expr(e: &LExpr, sums: &[FnSum]) -> bool {
            match e {
                LExpr::Global(..) | LExpr::Elem(..) => true,
                LExpr::Call(fid, args) => {
                    sums[*fid as usize].has_shared
                        || !sums[*fid as usize].spawns.is_empty()
                        || args.iter().any(|a| expr(a, sums))
                }
                LExpr::Un(_, a) => expr(a, sums),
                LExpr::Bin(_, a, b) => expr(a, sums) || expr(b, sums),
                LExpr::Builtin(_, args) => args.iter().any(|a| expr(a, sums)),
                _ => false,
            }
        }
        stmts.iter().any(|s| match s {
            LStmt::SetGlobal { .. } | LStmt::SetElem { .. } | LStmt::Task { .. } => true,
            LStmt::SetLocal { val, .. } => expr(val, sums),
            LStmt::If { cond, then_, else_ } => {
                expr(cond, sums) || touches_shared(then_, sums) || touches_shared(else_, sums)
            }
            LStmt::While { cond, body } => expr(cond, sums) || touches_shared(body, sums),
            LStmt::Return(Some(e)) | LStmt::Expr(e) => expr(e, sums),
            LStmt::Print(parts) => parts.iter().any(|p| match p {
                LPrint::Val(e) => expr(e, sums),
                LPrint::Str(_) => false,
            }),
            LStmt::Single { body, .. } | LStmt::Critical { body, .. } => touches_shared(body, sums),
            LStmt::WsFor(w) => touches_shared(&w.body, sums),
            _ => false,
        })
    }
    fn walk(stmts: &[LStmt], sums: &[FnSum], lints: &mut Vec<Lint>) {
        for s in stmts {
            match s {
                LStmt::Critical { body, span, .. } => {
                    if !touches_shared(body, sums) {
                        lints.push(Lint::new(
                            LintCode::DeadSync,
                            *span,
                            "critical section protects no shared access — the lock \
                             round-trip buys nothing",
                        ));
                    }
                    walk(body, sums, lints);
                }
                LStmt::If { then_, else_, .. } => {
                    walk(then_, sums, lints);
                    walk(else_, sums, lints);
                }
                LStmt::While { body, .. } => walk(body, sums, lints),
                LStmt::Single { body, .. } => walk(body, sums, lints),
                LStmt::WsFor(w) => walk(&w.body, sums, lints),
                _ => {}
            }
        }
    }
    for &fid in par {
        walk(&p.funcs[fid as usize].body, sums, lints);
    }
}

/// Criticals in purely sequential code: one thread runs there, the
/// runtime even elides the lock — the construct is dead weight.
fn seq_critical_lints(p: &LProgram, par: &BTreeSet<u16>, lints: &mut Vec<Lint>) {
    let seq = closure(p, BTreeSet::from([p.main_fn as u16]));
    fn walk(stmts: &[LStmt], lints: &mut Vec<Lint>) {
        for s in stmts {
            match s {
                LStmt::Critical { body, span, .. } => {
                    lints.push(Lint::new(
                        LintCode::DeadSync,
                        *span,
                        "`critical` in sequential code: a single thread executes here, \
                         so the section orders nothing (the runtime elides the lock)",
                    ));
                    walk(body, lints);
                }
                LStmt::If { then_, else_, .. } => {
                    walk(then_, lints);
                    walk(else_, lints);
                }
                LStmt::While { body, .. } => walk(body, lints),
                _ => {}
            }
        }
    }
    for &fid in &seq {
        if par.contains(&fid) {
            continue;
        }
        walk(&p.funcs[fid as usize].body, lints);
    }
}
