//! Parse tree for the `.omp` source language: a small C subset plus
//! `#pragma omp` directive statements. The semantic pass
//! ([`crate::sema`]) resolves names, classifies variables (the paper's
//! Modification 1) and lowers this tree to the executable IR.

use crate::diag::Span;

/// Declared types. All values are IEEE doubles at run time; `int`
/// declarations add C-style truncation on store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ty {
    Int,
    Double,
    Void,
}

#[derive(Debug)]
pub(crate) struct Program {
    pub globals: Vec<Global>,
    pub funcs: Vec<Func>,
}

/// A file-scope declaration. Globals are the program's *shared* data:
/// they live in DSM space (Modification 1 — stack variables cannot be
/// shared).
#[derive(Debug)]
pub(crate) struct Global {
    pub ty: Ty,
    pub name: String,
    pub span: Span,
    pub kind: GlobalKind,
}

#[derive(Debug)]
pub(crate) enum GlobalKind {
    Scalar(Option<Expr>),
    Array(Expr),
}

#[derive(Debug)]
pub(crate) struct Func {
    pub ty: Ty,
    pub name: String,
    pub span: Span,
    pub params: Vec<Param>,
    pub body: Vec<Stmt>,
}

#[derive(Debug)]
pub(crate) struct Param {
    pub ty: Ty,
    pub name: String,
    pub span: Span,
}

#[derive(Debug)]
pub(crate) enum Expr {
    Num(f64, Span),
    Var(String, Span),
    Index(String, Box<Expr>, Span),
    Un(UnOp, Box<Expr>, Span),
    Bin(BinOp, Box<Expr>, Box<Expr>, Span),
    Call(String, Vec<Expr>, Span),
}

impl Expr {
    pub(crate) fn span(&self) -> Span {
        match self {
            Expr::Num(_, s)
            | Expr::Var(_, s)
            | Expr::Index(_, _, s)
            | Expr::Un(_, _, s)
            | Expr::Bin(_, _, _, s)
            | Expr::Call(_, _, s) => *s,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

#[derive(Debug)]
pub(crate) enum Stmt {
    Decl {
        ty: Ty,
        name: String,
        init: Option<Expr>,
        span: Span,
    },
    Assign {
        target: Target,
        value: Expr,
    },
    If {
        cond: Expr,
        then_: Vec<Stmt>,
        else_: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    For(ForLoop),
    Return {
        value: Option<Expr>,
        span: Span,
    },
    Print {
        parts: Vec<PrintPart>,
    },
    Expr(Expr),
    Block(Vec<Stmt>),
    Omp(OmpStmt),
}

/// A C-style `for`. Work-shared (`#pragma omp for`) loops must be in the
/// canonical form `for (i = LO; i < HI; i = i + 1)`; sequential loops are
/// unrestricted.
#[derive(Debug)]
pub(crate) struct ForLoop {
    pub init: Option<Box<Stmt>>,
    pub cond: Option<Expr>,
    pub step: Option<Box<Stmt>>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

#[derive(Debug)]
pub(crate) enum Target {
    Var(String, Span),
    Elem(String, Expr, Span),
}

#[derive(Debug)]
pub(crate) enum PrintPart {
    Str(String),
    Expr(Expr),
}

/// A `#pragma omp` directive and (where applicable) its annotated
/// statement.
#[derive(Debug)]
pub(crate) struct OmpStmt {
    pub dir: Dir,
    pub span: Span,
}

#[derive(Debug)]
pub(crate) enum Dir {
    Parallel {
        clauses: Vec<Clause>,
        body: Vec<Stmt>,
    },
    ParallelFor {
        clauses: Vec<Clause>,
        loop_: ForLoop,
    },
    For {
        clauses: Vec<Clause>,
        loop_: ForLoop,
    },
    Single {
        body: Vec<Stmt>,
    },
    Critical {
        name: Option<String>,
        body: Vec<Stmt>,
    },
    Barrier,
    Task {
        clauses: Vec<Clause>,
        body: Vec<Stmt>,
    },
    Taskwait,
}

#[derive(Debug)]
pub(crate) enum Clause {
    Shared(Vec<(String, Span)>),
    Private(Vec<(String, Span)>),
    Firstprivate(Vec<(String, Span)>),
    Reduction {
        op: RedKind,
        vars: Vec<(String, Span)>,
        span: Span,
    },
    Schedule {
        kind: SchedKind,
        chunk: Option<usize>,
        span: Span,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RedKind {
    Sum,
    Prod,
    Min,
    Max,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SchedKind {
    Static,
    Dynamic,
    Guided,
    Adaptive,
    Affinity,
    Runtime,
}
