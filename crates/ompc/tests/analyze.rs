//! The static analyzer against its fixture matrix, plus dynamic
//! happens-before confirmation of the race-class findings.
//!
//! The contract under test:
//! - every `examples/omp/racy/*.omp` fixture is flagged with exactly the
//!   expected lint codes at the expected spans;
//! - no `examples/omp/clean/*.omp` fixture and none of the five shipped
//!   examples produce any lint (zero false positives on the corpus);
//! - running a racy fixture under [`ompc::Compiled::check_races`]
//!   reports concrete racing pairs whose spans match the static finding
//!   (the static lint is *confirmed* by an actual interleaving);
//! - the analyzer never panics on generated programs.

use nomp::OmpConfig;
use ompc::{compile, compile_report, lints_to_json, promote_races, Lint, LintLevel};

fn fixture(rel: &str) -> String {
    let path = format!("{}/../../examples/omp/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn lints_of(rel: &str) -> Vec<Lint> {
    compile_report(&fixture(rel))
        .unwrap_or_else(|d| panic!("{rel} failed to compile: {d}"))
        .lints
}

fn fixture_files(dir: &str) -> Vec<String> {
    let path = format!("{}/../../examples/omp/{dir}", env!("CARGO_MANIFEST_DIR"));
    let mut names: Vec<String> = std::fs::read_dir(&path)
        .unwrap_or_else(|e| panic!("read_dir {path}: {e}"))
        .map(|e| format!("{dir}/{}", e.unwrap().file_name().to_string_lossy()))
        .filter(|n| n.ends_with(".omp"))
        .collect();
    names.sort();
    names
}

// ---------------------------------------------------------------------
// Static matrix
// ---------------------------------------------------------------------

/// Every racy fixture flags with exactly the expected `(code, line, col)`
/// set — no more, no less.
/// One fixture's expected findings: `(code, line, col)` triples.
type Findings = &'static [(&'static str, u32, u32)];

#[test]
fn racy_fixtures_flag_expected_codes_and_spans() {
    let expected: &[(&str, Findings)] = &[
        ("racy/dead_barrier.omp", &[("OMP206", 11, 9)]),
        ("racy/dead_critical.omp", &[("OMP206", 7, 9)]),
        ("racy/lock_order.omp", &[("OMP205", 16, 13)]),
        ("racy/priv_escape_loopvar.omp", &[("OMP204", 10, 9)]),
        ("racy/priv_escape_tid.omp", &[("OMP204", 10, 9)]),
        ("racy/red_read_misuse.omp", &[("OMP203", 10, 16)]),
        ("racy/red_write_misuse.omp", &[("OMP203", 7, 9)]),
        ("racy/seq_critical.omp", &[("OMP206", 5, 5)]),
        ("racy/single_vs_team_read.omp", &[("OMP202", 11, 13)]),
        (
            "racy/task_incr.omp",
            &[("OMP201", 13, 21), ("OMP202", 13, 21)],
        ),
        ("racy/team_incr.omp", &[("OMP201", 7, 9), ("OMP202", 7, 9)]),
        ("racy/ws_same_cell.omp", &[("OMP201", 7, 9)]),
    ];
    // The matrix covers every file in racy/ (a new fixture must bring
    // its expectation along).
    let listed: Vec<&str> = expected.iter().map(|(f, _)| *f).collect();
    assert_eq!(fixture_files("racy"), listed, "racy/ out of sync");

    for (file, want) in expected {
        let got: Vec<(String, u32, u32)> = lints_of(file)
            .iter()
            .map(|l| (l.code.code().to_string(), l.span.line, l.span.col))
            .collect();
        let want: Vec<(String, u32, u32)> = want
            .iter()
            .map(|&(c, l, co)| (c.to_string(), l, co))
            .collect();
        assert_eq!(got, want, "{file}");
    }
}

/// Clean fixtures and all five shipped examples produce zero lints —
/// the analyzer only reports provable findings.
#[test]
fn clean_corpus_produces_no_lints() {
    let clean = fixture_files("clean");
    assert!(clean.len() >= 10, "clean fixture matrix shrank: {clean:?}");
    for file in clean {
        let lints = lints_of(&file);
        assert!(lints.is_empty(), "{file}: unexpected lints {lints:?}");
    }
    for file in [
        "pi.omp",
        "dotprod.omp",
        "jacobi.omp",
        "fib.omp",
        "qsort.omp",
    ] {
        let lints = lints_of(file);
        assert!(lints.is_empty(), "{file}: unexpected lints {lints:?}");
    }
}

/// `promote_races` raises exactly the race-class codes to `Deny`;
/// structural findings stay warnings. JSON output carries the levels.
#[test]
fn promote_races_denies_race_class_only() {
    let mut lints = lints_of("racy/team_incr.omp");
    lints.extend(lints_of("racy/dead_barrier.omp"));
    promote_races(&mut lints);
    for l in &lints {
        let want = if l.code.is_race_class() {
            LintLevel::Deny
        } else {
            LintLevel::Warn
        };
        assert_eq!(l.level, want, "{l}");
    }
    let json = lints_to_json(&lints);
    assert!(json.contains("\"level\":\"error\""), "{json}");
    assert!(json.contains("\"level\":\"warning\""), "{json}");
    assert!(json.contains("\"code\":\"OMP201\""), "{json}");
}

/// Related spans point at the second access of pairwise findings.
#[test]
fn race_lints_carry_related_spans() {
    let lints = lints_of("racy/single_vs_team_read.omp");
    let (rs, label) = lints[0].related.clone().expect("related span");
    assert_eq!((rs.line, rs.col), (8, 20));
    assert!(label.contains("read"), "{label}");
}

// ---------------------------------------------------------------------
// Dynamic confirmation
// ---------------------------------------------------------------------

/// Each shared-write/read-race fixture, run under the dynamic checker,
/// reports a concrete racing pair whose spans include the statically
/// flagged access — the static finding is confirmed at runtime.
#[test]
fn dynamic_checker_confirms_race_fixtures() {
    let confirm: &[(&str, u32, u32)] = &[
        ("racy/team_incr.omp", 7, 9),
        ("racy/ws_same_cell.omp", 7, 9),
        ("racy/task_incr.omp", 13, 21),
        ("racy/single_vs_team_read.omp", 11, 13),
        ("racy/priv_escape_tid.omp", 10, 9),
        ("racy/priv_escape_loopvar.omp", 10, 9),
    ];
    for &(file, line, col) in confirm {
        let prog = compile(&fixture(file)).unwrap().check_races(true);
        let out = ompc::run_compiled(&prog, OmpConfig::fast_test(4));
        assert!(!out.races.is_empty(), "{file}: no dynamic race observed");
        let hit = out.races.iter().any(|r| {
            let s = |sp: ompc::Span| (sp.line, sp.col);
            s(r.first.span) == (line, col) || s(r.second.span) == (line, col)
        });
        assert!(
            hit,
            "{file}: no racing pair touches the static finding at {line}:{col}: {:?}",
            out.races
        );
        // The report names threads on distinct nodes or threads — a
        // same-thread pair would not be a race.
        for r in &out.races {
            assert_ne!(r.first.thread, r.second.thread, "{file}: {r}");
        }
    }
}

/// The dynamic checker stays silent on race-free programs: the clean
/// fixtures that exercise real synchronization, and every shipped
/// example.
#[test]
fn dynamic_checker_silent_on_clean_programs() {
    for file in [
        "clean/critical_incr.omp",
        "clean/single_then_read.omp",
        "clean/barrier_phases.omp",
        "clean/solo_task_wait.omp",
        "pi.omp",
        "fib.omp",
    ] {
        let prog = compile(&fixture(file)).unwrap().check_races(true);
        let out = ompc::run_compiled(&prog, OmpConfig::fast_test(4));
        assert!(
            out.races.is_empty(),
            "{file}: false dynamic races {:?}",
            out.races
        );
    }
}

/// `check_races(false)` (and the default) keep the report empty and do
/// not disturb results.
#[test]
fn race_checking_is_off_by_default() {
    let src = fixture("racy/team_incr.omp");
    let out = ompc::run_compiled(&compile(&src).unwrap(), OmpConfig::fast_test(2));
    assert!(out.races.is_empty());
}

// ---------------------------------------------------------------------
// No-panic property
// ---------------------------------------------------------------------

// Programs assembled from directive-heavy fragments: most compile, and
// whatever compiles must analyze without panicking (and with stable
// JSON rendering).
proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 256, max_shrink_iters: 0 })]

    #[test]
    fn analyzer_never_panics_on_generated_programs(
        clause in 0usize..6,
        picks in proptest::collection::vec(0usize..18, 0..12),
    ) {
        const CLAUSES: [&str; 6] = [
            "", " reduction(+:g)", " reduction(max:g)", " private(g)",
            " firstprivate(g)", " reduction(*:h)",
        ];
        const STMTS: [&str; 18] = [
            "g = g + 1.0;",
            "g = 3.0;",
            "double x = g;",
            "a[0] = 1.0;",
            "h = omp_get_thread_num();",
            "#pragma omp critical\n{ g = g + 1.0; }\n",
            "#pragma omp critical (red)\n{ h = h + 1.0; }\n",
            "#pragma omp critical (blue)\n{\n#pragma omp critical (red)\n{ g = 0.0; }\n}\n",
            "#pragma omp barrier\n",
            "#pragma omp single\n{ g = 5.0; }\n",
            "#pragma omp for\nfor (int i = 0; i < 8; i = i + 1) { a[i] = i; }\n",
            "#pragma omp for\nfor (int j = 0; j < 8; j = j + 1) { a[0] = j; }\n",
            "double y = f(2.0);",
            "h = a[3];",
            "print(\"v \", g);",
            "double z = omp_get_wtime();",
            "#pragma omp task\n{ g = g + 1.0; }\n",
            "#pragma omp taskwait\n",
        ];
        let body: String = picks.iter().map(|&i| format!("{}\n", STMTS[i])).collect();
        let src = format!(
            "double g;\ndouble h;\ndouble a[8];\n\
             double f(double v) {{ return v + g; }}\n\
             int main() {{\n#pragma omp parallel{}\n{{\n{body}}}\nreturn 0;\n}}",
            CLAUSES[clause],
        );
        if let Ok(report) = compile_report(&src) {
            let mut lints = report.lints;
            promote_races(&mut lints);
            let _ = lints_to_json(&lints);
            for l in &lints {
                let _ = l.to_string();
            }
        }
    }
}
