//! Feature-level execution tests: small programs exercising one
//! construct each, cross-checked against hand-computed results.

use nomp::{OmpConfig, Schedule};

fn run(src: &str, nodes: usize) -> ompc::OmpOutcome {
    ompc::run_source(src, OmpConfig::fast_test(nodes))
        .unwrap_or_else(|d| panic!("compile failed: {d}"))
}

#[test]
fn int_declarations_truncate_like_c() {
    let out = run(
        "int q;\n\
         double d;\n\
         int main() {\n\
           int lo = 3; int hi = 8;\n\
           q = (lo + hi) / 2;\n\
           d = (lo + hi) / 2.0;\n\
           int m = 17 % 5;\n\
           return m;\n\
         }",
        1,
    );
    assert_eq!(out.scalars["q"], 5.0); // truncated on store
    assert_eq!(out.scalars["d"], 5.5); // double keeps the fraction
    assert_eq!(out.ret, 2.0);
}

#[test]
fn parallel_level_reduction_and_builtins() {
    // reduction on `parallel` itself: every thread contributes its
    // thread id + 1 once; expect sum 1..=p.
    for nodes in [1usize, 3, 8] {
        let out = run(
            "double total;\n\
             int main() {\n\
               #pragma omp parallel reduction(+:total)\n\
               {\n\
                 total = total + omp_get_thread_num() + 1;\n\
               }\n\
               return omp_get_num_threads();\n\
             }",
            nodes,
        );
        let p = nodes as f64;
        assert_eq!(out.scalars["total"], p * (p + 1.0) / 2.0, "{nodes} nodes");
        // omp_get_num_threads in sequential context is 1, like real OpenMP.
        assert_eq!(out.ret, 1.0);
    }
}

#[test]
fn privatized_globals_and_firstprivate() {
    let out = run(
        "double g = 10.0;\n\
         double seen[8];\n\
         int main() {\n\
           #pragma omp parallel firstprivate(g)\n\
           {\n\
             g = g + omp_get_thread_num();\n\
             seen[omp_get_thread_num()] = g;\n\
           }\n\
           return 0;\n\
         }",
        4,
    );
    // Each thread's private copy started at 10; the global is untouched.
    assert_eq!(out.scalars["g"], 10.0);
    assert_eq!(out.arrays["seen"][..4], [10.0, 11.0, 12.0, 13.0]);

    let out = run(
        "double g = 7.0;\n\
         double seen[8];\n\
         int main() {\n\
           #pragma omp parallel private(g)\n\
           { seen[omp_get_thread_num()] = g; }\n\
           return 0;\n\
         }",
        2,
    );
    // private(g): region copies start at 0, not 7.
    assert_eq!(out.arrays["seen"][..2], [0.0, 0.0]);
    assert_eq!(out.scalars["g"], 7.0);
}

#[test]
fn min_and_prod_reductions() {
    let out = run(
        "double lo;\n\
         double prod = 1.0;\n\
         int main() {\n\
           lo = 1e9;\n\
           #pragma omp parallel for reduction(min:lo) schedule(static, 3)\n\
           for (int i = 0; i < 50; i = i + 1) {\n\
             double v = (i - 20) * (i - 20) + 5;\n\
             if (v < lo) { lo = v; }\n\
           }\n\
           #pragma omp parallel for reduction(*:prod) schedule(dynamic, 4)\n\
           for (int i = 1; i <= 10; i = i + 1) {\n\
             prod = prod * i;\n\
           }\n\
           return 0;\n\
         }",
        3,
    );
    assert_eq!(out.scalars["lo"], 5.0);
    assert_eq!(out.scalars["prod"], 3_628_800.0); // 10!
}

#[test]
fn critical_sections_serialize_updates() {
    for nodes in [2usize, 4] {
        let out = run(
            "double counter;\n\
             int main() {\n\
               #pragma omp parallel\n\
               {\n\
                 int i = 0;\n\
                 while (i < 5) {\n\
                   #pragma omp critical (ctr)\n\
                   { counter = counter + 1; }\n\
                   i = i + 1;\n\
                 }\n\
               }\n\
               return 0;\n\
             }",
            nodes,
        );
        assert_eq!(out.scalars["counter"], 5.0 * nodes as f64, "{nodes} nodes");
    }
}

#[test]
fn barrier_phases_are_ordered() {
    // Phase 1 writes, barrier, phase 2 reads a neighbour's slot: without
    // the barrier the read could see a stale zero.
    let out = run(
        "double a[8];\n\
         double b[8];\n\
         int main() {\n\
           #pragma omp parallel\n\
           {\n\
             int me = omp_get_thread_num();\n\
             a[me] = me + 1;\n\
             #pragma omp barrier\n\
             b[me] = a[(me + 1) % omp_get_num_threads()];\n\
           }\n\
           return 0;\n\
         }",
        4,
    );
    assert_eq!(out.arrays["b"][..4], [2.0, 3.0, 4.0, 1.0]);
}

#[test]
fn single_runs_once_and_publishes() {
    let out = run(
        "double x;\n\
         double seen[8];\n\
         int main() {\n\
           #pragma omp parallel\n\
           {\n\
             #pragma omp single\n\
             { x = 42.0; }\n\
             seen[omp_get_thread_num()] = x;\n\
           }\n\
           return 0;\n\
         }",
        3,
    );
    assert_eq!(out.scalars["x"], 42.0);
    assert_eq!(out.arrays["seen"][..3], [42.0, 42.0, 42.0]);
}

#[test]
fn interior_dynamic_for_reruns_correctly() {
    // An interior `omp for` with a shared chunk counter executed several
    // times in one region: the counter reset logic must make every
    // sweep cover all indices exactly once.
    let out = run(
        "double hits[40];\n\
         int rounds = 3;\n\
         int main() {\n\
           #pragma omp parallel\n\
           {\n\
             int r = 0;\n\
             while (r < rounds) {\n\
               #pragma omp for schedule(dynamic, 3)\n\
               for (int i = 0; i < 40; i = i + 1) {\n\
                 hits[i] = hits[i] + 1;\n\
               }\n\
               r = r + 1;\n\
             }\n\
           }\n\
           return 0;\n\
         }",
        4,
    );
    assert!(
        out.arrays["hits"].iter().all(|&h| h == 3.0),
        "{:?}",
        out.arrays["hits"]
    );
}

#[test]
fn schedule_runtime_follows_the_config() {
    let src = "double s;\n\
         int main() {\n\
           #pragma omp parallel for reduction(+:s) schedule(runtime)\n\
           for (int i = 0; i < 100; i = i + 1) { s = s + i; }\n\
           return 0;\n\
         }";
    for rs in [
        Schedule::Static,
        Schedule::Dynamic(8),
        Schedule::Guided(2),
        Schedule::StaticChunk(5),
    ] {
        let mut cfg = OmpConfig::fast_test(3);
        cfg.runtime_schedule = rs;
        let out = ompc::run_source(src, cfg).unwrap();
        assert_eq!(out.scalars["s"], 4950.0, "{rs:?}");
    }
}

#[test]
fn wtime_advances_across_regions() {
    let out = run(
        "double t0;\n\
         double t1;\n\
         int main() {\n\
           t0 = omp_get_wtime();\n\
           #pragma omp parallel\n\
           { }\n\
           t1 = omp_get_wtime();\n\
           return 0;\n\
         }",
        // Paper cost model so fork/barrier have a real price.
        2,
    );
    assert!(out.scalars["t1"] >= out.scalars["t0"]);
}

#[test]
fn regions_without_reachable_tasks_stay_plain() {
    // The same parallel-for program, with and without an *uncalled*
    // task-bearing function elsewhere in the file: the loop region must
    // not pay task-scope overhead just because tasks exist somewhere,
    // so the modeled traffic is identical.
    let plain = "double s;\n\
         int main() {\n\
           #pragma omp parallel for reduction(+:s)\n\
           for (int i = 0; i < 64; i = i + 1) { s = s + i; }\n\
           return 0;\n\
         }";
    let with_unreachable_task = "double s;\n\
         double g;\n\
         void spawner() {\n\
           #pragma omp task\n\
           g = 1.0;\n\
         }\n\
         int main() {\n\
           #pragma omp parallel for reduction(+:s)\n\
           for (int i = 0; i < 64; i = i + 1) { s = s + i; }\n\
           return 0;\n\
         }";
    let a = run(plain, 4);
    let b = run(with_unreachable_task, 4);
    assert_eq!(a.scalars["s"], 2016.0);
    assert_eq!(b.scalars["s"], 2016.0);
    assert_eq!(a.msgs, b.msgs, "plain region paid task-scope overhead");

    // And a program mixing both kinds of region still works: the loop
    // region is plain, the task region schedules tasks.
    let mixed = "double s;\n\
         double c;\n\
         void leaf() {\n\
           #pragma omp critical\n\
           { c = c + 1; }\n\
         }\n\
         int main() {\n\
           #pragma omp parallel for reduction(+:s)\n\
           for (int i = 0; i < 64; i = i + 1) { s = s + i; }\n\
           #pragma omp parallel\n\
           {\n\
             #pragma omp single\n\
             {\n\
               int k = 0;\n\
               while (k < 10) {\n\
                 #pragma omp task\n\
                 leaf();\n\
                 k = k + 1;\n\
               }\n\
             }\n\
           }\n\
           return 0;\n\
         }";
    let m = run(mixed, 4);
    assert_eq!(m.scalars["s"], 2016.0);
    assert_eq!(m.scalars["c"], 10.0);
    assert!(m.dsm.tasks_executed >= 10);
}

#[test]
fn runaway_recursion_is_a_clean_runtime_error() {
    let r = std::panic::catch_unwind(|| {
        run(
            "int f(int k) { return f(k) + 1; }\nint main() { return f(1); }",
            1,
        )
    });
    let err = r.expect_err("unbounded recursion must be caught");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("call depth exceeded"), "{msg}");
}

#[test]
fn nan_index_is_rejected_not_wrapped_to_zero() {
    let r = std::panic::catch_unwind(|| {
        run(
            "double a[4];\ndouble z;\nint main() { a[z / z] = 9.0; return 0; }",
            1,
        )
    });
    let err = r.expect_err("NaN index must be a runtime error");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("out of bounds"), "{msg}");
}

#[test]
fn runtime_error_is_a_spanned_panic() {
    let r =
        std::panic::catch_unwind(|| run("double a[4];\nint main() { a[9] = 1.0; return 0; }", 1));
    let err = r.expect_err("out-of-bounds store must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("ompc runtime error"), "{msg}");
    assert!(msg.contains("out of bounds"), "{msg}");
}
