//! Front-end error paths: every malformed program must produce a
//! spanned [`ompc::Diag`], never a panic. The lexer and whole-pipeline
//! no-panic properties are checked over arbitrary inputs with proptest.

use ompc::compile;

/// Compile and return the diagnostic, asserting failure.
fn diag(src: &str) -> ompc::Diag {
    match compile(src) {
        Err(d) => d,
        Ok(_) => panic!("expected a diagnostic for:\n{src}"),
    }
}

#[test]
fn malformed_pragmas() {
    // Misspelled directive.
    let d = diag("int main() {\n#pragma omp paralell\n{ }\n}");
    assert!(d.msg.contains("unknown directive"), "{d}");
    assert_eq!(d.span.line, 2, "{d}");

    // Missing directive entirely.
    let d = diag("int main() {\n#pragma omp\nint x;\n}");
    assert!(d.msg.contains("missing a directive"), "{d}");

    // Not an omp pragma.
    let d = diag("int main() {\n#pragma once\n}");
    assert!(d.msg.contains("#pragma omp"), "{d}");

    // parallel for not followed by a for loop.
    let d = diag("int main() {\n#pragma omp parallel for\nint x;\n}");
    assert!(d.msg.contains("expected a `for` loop"), "{d}");
    assert_eq!(d.span.line, 3, "{d}");

    // Unknown clause and unknown schedule kind.
    let d = diag("int main() {\n#pragma omp parallel nowait\n{ }\n}");
    assert!(d.msg.contains("unknown clause"), "{d}");
    let d = diag(
        "int main() {\n#pragma omp parallel for schedule(bogus)\nfor (int i = 0; i < 3; i = i + 1) { }\n}",
    );
    assert!(d.msg.contains("unknown schedule kind"), "{d}");

    // Trailing garbage on a standalone directive.
    let d = diag("int main() {\n#pragma omp parallel\n{\n#pragma omp barrier now\n}\n}");
    assert!(d.msg.contains("barrier"), "{d}");
    assert_eq!(d.span.line, 4, "{d}");
}

#[test]
fn non_canonical_worksharing_loops() {
    let d =
        diag("int main() {\n#pragma omp parallel for\nfor (int i = 0; i < 10; i = i + 2) { }\n}");
    assert!(d.msg.contains("i = i + 1"), "{d}");
    let d =
        diag("int main() {\n#pragma omp parallel for\nfor (int i = 10; i > 0; i = i + 1) { }\n}");
    assert!(d.msg.contains("i < HI"), "{d}");
}

#[test]
fn reduction_on_a_private_variable_is_rejected() {
    // `sum` is a stack variable — private by Modification 1 — so the
    // reduction cannot combine into shared memory.
    let d = diag(
        "int main() {\n\
         double sum = 0.0;\n\
         #pragma omp parallel for reduction(+:sum)\n\
         for (int i = 0; i < 10; i = i + 1) { sum = sum + i; }\n\
         return 0;\n}",
    );
    assert!(d.msg.contains("private"), "{d}");
    assert!(d.msg.contains("global scope"), "{d}");
    assert_eq!(d.span.line, 3, "{d}");
}

#[test]
fn reduction_variable_cannot_also_be_private() {
    let d = diag(
        "double s;\n\
         int main() {\n\
         #pragma omp parallel private(s) reduction(+:s)\n\
         { s = s + 1.0; }\n}",
    );
    assert!(d.msg.contains("cannot also be private"), "{d}");
    assert_eq!(d.span.line, 3, "{d}");
}

#[test]
fn shared_stack_variable_is_a_modification1_error() {
    let d = diag(
        "int main() {\n\
         double x = 1.0;\n\
         #pragma omp parallel shared(x)\n\
         { x = 2.0; }\n}",
    );
    assert!(d.msg.contains("Modification 1"), "{d}");
    assert_eq!(d.span.line, 3, "{d}");
}

#[test]
fn taskwait_outside_a_parallel_region() {
    // Directly in main.
    let d = diag("int main() {\n#pragma omp taskwait\nreturn 0;\n}");
    assert!(d.msg.contains("outside a parallel region"), "{d}");
    assert_eq!(d.span.line, 2, "{d}");

    // Through the call graph: helper() is called from sequential
    // context, so its orphaned taskwait can execute outside any region.
    let d = diag(
        "void helper() {\n\
         #pragma omp taskwait\n\
         }\n\
         int main() { helper(); return 0; }",
    );
    assert!(d.msg.contains("outside a parallel region"), "{d}");
    assert!(d.msg.contains("helper"), "{d}");
    assert_eq!(d.span.line, 2, "{d}");

    // But the same orphaned taskwait is fine when only called from
    // parallel context.
    let src = "double g;\n\
         void helper() {\n\
         #pragma omp taskwait\n\
         }\n\
         int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp task\n\
         helper();\n\
         }\n\
         return 0;\n}";
    assert!(compile(src).is_ok(), "{:?}", compile(src).err());
}

#[test]
fn worksharing_and_single_must_be_lexically_inside_parallel() {
    let d = diag("int main() {\n#pragma omp for\nfor (int i = 0; i < 3; i = i + 1) { }\n}");
    assert!(d.msg.contains("lexically inside"), "{d}");
    let d = diag("int main() {\n#pragma omp single\n{ }\n}");
    assert!(d.msg.contains("lexically inside"), "{d}");
}

#[test]
fn closely_nested_region_restrictions_are_compile_errors_not_deadlocks() {
    // single inside a work-shared loop body: thread teams execute
    // different iteration counts, so the implied barrier would deadlock.
    let d = diag(
        "int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp for\n\
         for (int i = 0; i < 5; i = i + 1) {\n\
         #pragma omp single\n\
         { }\n\
         }\n\
         }\n}",
    );
    assert!(d.msg.contains("closely nested"), "{d}");
    assert_eq!(d.span.line, 6, "{d}");

    // barrier inside a parallel-for body.
    let d = diag(
        "double s;\n\
         int main() {\n\
         #pragma omp parallel for\n\
         for (int i = 0; i < 5; i = i + 1) {\n\
         #pragma omp barrier\n\
         }\n\
         return 0;\n}",
    );
    assert!(d.msg.contains("closely nested"), "{d}");
    assert_eq!(d.span.line, 5, "{d}");

    // barrier inside single, and worksharing inside critical.
    let d = diag(
        "int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp single\n\
         {\n\
         #pragma omp barrier\n\
         }\n\
         }\n}",
    );
    assert!(d.msg.contains("closely nested"), "{d}");
    let d = diag(
        "int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp critical\n\
         {\n\
         #pragma omp for\n\
         for (int i = 0; i < 3; i = i + 1) { }\n\
         }\n\
         }\n}",
    );
    assert!(d.msg.contains("closely nested"), "{d}");

    // Orphaned barrier reached through a call from a work-shared loop
    // body — caught over the call graph, at the call site.
    let d = diag(
        "void sync() {\n\
         #pragma omp barrier\n\
         }\n\
         int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp for\n\
         for (int i = 0; i < 5; i = i + 1) { sync(); }\n\
         #pragma omp barrier\n\
         }\n\
         return 0;\n}",
    );
    assert!(d.msg.contains("contains a `barrier`"), "{d}");
    assert!(d.msg.contains("sync"), "{d}");
    assert_eq!(d.span.line, 8, "{d}");

    // The same orphaned-barrier function is fine straight from the
    // region body, where the whole team reaches it.
    let ok = "void sync() {\n\
         #pragma omp barrier\n\
         }\n\
         int main() {\n\
         #pragma omp parallel\n\
         { sync(); }\n\
         return 0;\n}";
    assert!(compile(ok).is_ok(), "{:?}", compile(ok).err());
}

#[test]
fn taskwait_inside_critical_is_a_compile_error_not_a_deadlock() {
    // The waiter would block holding the critical's lock while an
    // unfinished task may need it (and on an SMP node it pins the
    // node's protocol gate): rejected lexically...
    let d = diag(
        "int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp task\n\
         { }\n\
         #pragma omp critical\n\
         {\n\
         #pragma omp taskwait\n\
         }\n\
         }\n}",
    );
    assert!(d.msg.contains("closely nested"), "{d}");
    assert_eq!(d.span.line, 8, "{d}");

    // ...and over the call graph, at the call site inside the critical.
    let d = diag(
        "void drain() {\n\
         #pragma omp taskwait\n\
         }\n\
         int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp task\n\
         { }\n\
         #pragma omp critical\n\
         { drain(); }\n\
         }\n\
         return 0;\n}",
    );
    assert!(d.msg.contains("contains a `taskwait`"), "{d}");
    assert_eq!(d.span.line, 10, "{d}");

    // taskwait inside a task body (the canonical divide-and-conquer
    // shape) stays legal.
    let ok = "int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp task\n\
         {\n\
         #pragma omp taskwait\n\
         }\n\
         }\n\
         return 0;\n}";
    assert!(compile(ok).is_ok(), "{:?}", compile(ok).err());
}

#[test]
fn nested_parallel_is_rejected_lexically_and_over_the_call_graph() {
    let d = diag(
        "int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp parallel\n\
         { }\n\
         }\n}",
    );
    assert!(d.msg.contains("nested parallel"), "{d}");
    assert_eq!(d.span.line, 4, "{d}");

    let d = diag(
        "void inner() {\n\
         #pragma omp parallel\n\
         { }\n\
         }\n\
         int main() {\n\
         #pragma omp parallel\n\
         { inner(); }\n\
         return 0;\n}",
    );
    assert!(d.msg.contains("nested parallel"), "{d}");
}

#[test]
fn task_capture_limit_is_enforced() {
    let d = diag(
        "double g;\n\
         void work(int a, int b, int c, int d) {\n\
         #pragma omp task\n\
         g = a + b + c + d;\n\
         }\n\
         int main() {\n\
         #pragma omp parallel\n\
         {\n\
         #pragma omp task\n\
         work(1, 2, 3, 4);\n\
         }\n\
         return 0;\n}",
    );
    assert!(d.msg.contains("captures 4"), "{d}");
    assert_eq!(d.span.line, 3, "{d}");
}

#[test]
fn name_and_type_errors_are_spanned() {
    let d = diag("int main() { x = 1; }");
    assert!(d.msg.contains("unknown variable"), "{d}");
    let d = diag("int main() { frob(); }");
    assert!(d.msg.contains("unknown function"), "{d}");
    let d = diag("double a[4];\nint main() { a = 1.0; }");
    assert!(d.msg.contains("index"), "{d}");
    let d = diag("int main() { int x; int x; }");
    assert!(d.msg.contains("already declared"), "{d}");
    let d = diag("int f(int a) { return a; }\nint main() { return f(1, 2); }");
    assert!(d.msg.contains("argument"), "{d}");
    let d = diag("double n = m + 1;\ndouble m;\nint main() { return 0; }");
    assert!(d.msg.contains("before its declaration"), "{d}");
    let d = diag("int f() { return 1; }\ndouble g = f();\nint main() { return 0; }");
    assert!(d.msg.contains("global initializers"), "{d}");
    let d = diag("int main() { return sqrt(1.0, 2.0); }");
    assert!(d.msg.contains("argument"), "{d}");
}

#[test]
fn programs_without_main_are_rejected() {
    let d = diag("double x;");
    assert!(d.msg.contains("no `main`"), "{d}");
    let d = diag("int main(int argc) { return 0; }");
    assert!(d.msg.contains("no parameters"), "{d}");
}

// ----------------------------------------------------------------------
// No-panic properties
// ----------------------------------------------------------------------

// The front-end must never panic, whatever bytes it is fed; the second
// property uses a directive-flavored alphabet, which reaches much deeper
// into the pragma parser than raw bytes do.
proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 512, max_shrink_iters: 0 })]

    #[test]
    fn compile_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..255u8, 0..200)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = compile(&src);
    }

    #[test]
    fn compile_never_panics_on_pragma_soup(picks in proptest::collection::vec(0usize..24, 0..60)) {
        const WORDS: [&str; 24] = [
            "#pragma omp ", "parallel ", "for ", "task ", "taskwait\n", "barrier\n",
            "single ", "critical ", "reduction(+:x) ", "schedule(dynamic,4) ",
            "shared(x) ", "private(x) ", "firstprivate(x) ", "\n", "{ ", "} ",
            "int main() ", "double x; ", "x = 1; ", "for (int i = 0; i < 9; i = i + 1) ",
            "(", ")", ";", "1.5e3 ",
        ];
        let src: String = picks.iter().map(|&i| WORDS[i]).collect();
        let _ = compile(&src);
    }
}
