//! A line-delimited-JSON TCP front door for a [`Service`].
//!
//! Protocol: one JSON object per line in, one JSON object per line out
//! (the same dependency-free JSON the metrics exports use). Verbs:
//!
//! ```text
//! {"op":"submit", "omp":"<source>", ...}        compile + run a .omp program
//! {"op":"submit", "closure":"<name>", ...}      run a registered closure workload
//!     optional fields: "tenant":"<name>", "priority":N,
//!                      "deadline_ms":N, "wait":true
//! {"op":"status"}                               dispatcher state
//! {"op":"metrics"}                              service metrics (JSON export)
//! {"op":"drain"}                                stop admitting, wait until idle
//! ```
//!
//! Replies always carry `"ok"`: `{"ok":true, ...}` on success,
//! `{"ok":false, "error":"<kind>", "detail":"<text>"}` otherwise —
//! admission backpressure arrives as `error` = the
//! [`Rejected`](crate::Rejected) kind
//! (`queue_full`, `draining`, `deadline_unmeetable`, …). A fire-and-
//! forget submit answers `{"ok":true,"id":N}` at admission; with
//! `"wait":true` the reply additionally carries the job's outcome.
//!
//! [`Service`]: crate::Service

use crate::service::{JobError, JobRequest, JobValue, ServiceHandle, ServiceReport};
use now_metrics::json::{escape, parse, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP endpoint bound to a service.
///
/// Accepts connections on a background thread (one handler thread per
/// connection); [`TcpFront::shutdown`] stops accepting and joins every
/// handler, so no endpoint thread outlives it.
pub struct TcpFront {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl TcpFront {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// start serving the handle's service.
    pub fn bind(handle: ServiceHandle, addr: &str) -> std::io::Result<TcpFront> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = stop.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("now-service-tcp".into())
                .spawn(move || {
                    // Poll accept so shutdown is prompt without needing
                    // a self-connection wakeup dance.
                    listener
                        .set_nonblocking(true)
                        .expect("listener nonblocking");
                    while !stop.load(Ordering::SeqCst) {
                        match listener.accept() {
                            Ok((sock, _)) => {
                                let handle = handle.clone();
                                let stop = stop.clone();
                                let h = std::thread::Builder::new()
                                    .name("now-service-conn".into())
                                    .spawn(move || serve_conn(sock, handle, stop))
                                    .expect("spawn connection handler");
                                conns.lock().expect("conns lock").push(h);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .expect("spawn tcp acceptor")
        };
        Ok(TcpFront {
            addr: local,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the acceptor and every live connection
    /// handler.
    pub fn shutdown(mut self) {
        self.stop_impl();
    }

    fn stop_impl(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for TcpFront {
    fn drop(&mut self) {
        self.stop_impl();
    }
}

fn serve_conn(sock: TcpStream, handle: ServiceHandle, stop: Arc<AtomicBool>) {
    let mut out = match sock.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    // Poll reads so a connection left open by a quiet client cannot pin
    // shutdown: on timeout the loop rechecks the stop flag. A timeout
    // mid-line leaves the partial line in `buf`; the next read_line
    // call appends the rest.
    if sock
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut reader = BufReader::new(sock);
    let mut buf = String::new();
    while !stop.load(Ordering::SeqCst) {
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = std::mem::take(&mut buf);
                if line.trim().is_empty() {
                    continue;
                }
                let reply = handle_line(line.trim_end(), &handle);
                if out.write_all(reply.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    break;
                }
                let _ = out.flush();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

fn err_reply(kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\",\"detail\":\"{}\"}}",
        escape(kind),
        escape(detail)
    )
}

fn handle_line(line: &str, handle: &ServiceHandle) -> String {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return err_reply("bad_json", &e),
    };
    match req.get("op").and_then(Json::as_str) {
        Some("submit") => handle_submit(&req, handle),
        Some("status") => {
            let s = handle.status();
            let mut tenants = String::new();
            for (i, t) in s.tenants.iter().enumerate() {
                if i > 0 {
                    tenants.push(',');
                }
                tenants.push_str(&format!(
                    "{{\"name\":\"{}\",\"weight\":{},\"queued\":{},\"admitted\":{},\
                     \"completed\":{},\"expired\":{},\"failed\":{},\"rejected\":{}}}",
                    escape(&t.name),
                    t.weight,
                    t.queued,
                    t.admitted,
                    t.completed,
                    t.expired,
                    t.failed,
                    t.rejected
                ));
            }
            format!(
                "{{\"ok\":true,\"pool\":{},\"queue_depth\":{},\"in_flight\":{},\
                 \"open\":{},\"draining\":{},\"tenants\":[{}]}}",
                s.pool, s.queue_depth, s.in_flight, s.open, s.draining, tenants
            )
        }
        Some("metrics") => {
            // The metrics JSON export is multi-line; the protocol is
            // line-delimited, so ship it as one line.
            let doc = handle.metrics().to_json().replace('\n', " ");
            format!("{{\"ok\":true,\"metrics\":{}}}", doc.trim())
        }
        Some("drain") => {
            handle.begin_drain();
            handle.await_idle();
            let s = handle.metrics();
            format!(
                "{{\"ok\":true,\"drained\":true,\"admitted\":{},\"completed\":{},\
                 \"expired\":{},\"failed\":{},\"rejected\":{}}}",
                s.admitted(),
                s.completed(),
                s.expired(),
                s.failed(),
                s.rejected()
            )
        }
        Some(other) => err_reply("bad_request", &format!("unknown op {other:?}")),
        None => err_reply("bad_request", "missing \"op\""),
    }
}

fn handle_submit(req: &Json, handle: &ServiceHandle) -> String {
    let mut job = if let Some(src) = req.get("omp").and_then(Json::as_str) {
        match ompc::compile(src) {
            Ok(p) => JobRequest::omp(p),
            Err(d) => return err_reply("compile", &d.to_string()),
        }
    } else if let Some(name) = req.get("closure").and_then(Json::as_str) {
        JobRequest::named(name)
    } else {
        return err_reply("bad_request", "submit needs \"omp\" or \"closure\"");
    };
    if let Some(t) = req.get("tenant").and_then(Json::as_str) {
        job = job.tenant(t);
    }
    if let Some(p) = req.get("priority") {
        match p.as_u64() {
            Some(p) if p <= u8::MAX as u64 => job = job.priority(p as u8),
            _ => return err_reply("bad_request", "priority must be an integer in 0..=255"),
        }
    }
    if let Some(d) = req.get("deadline_ms") {
        match d {
            Json::Num(ms) if ms.is_finite() && *ms >= 0.0 => {
                job = job.deadline(Duration::from_secs_f64(ms / 1e3));
            }
            _ => return err_reply("bad_request", "deadline_ms must be a finite number >= 0"),
        }
    }
    let wait = matches!(req.get("wait"), Some(Json::Bool(true)));
    match handle.submit(job) {
        Ok(ticket) => {
            let id = ticket.id();
            if wait {
                report_reply(id, ticket.wait())
            } else {
                format!("{{\"ok\":true,\"id\":{id}}}")
            }
        }
        Err(r) => err_reply(r.kind(), &r.to_string()),
    }
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn value_json(v: &JobValue) -> String {
    match v {
        JobValue::Unit => "null".to_string(),
        JobValue::Num(x) => json_num(*x),
        JobValue::Nums(xs) => {
            let body: Vec<String> = xs.iter().map(|x| json_num(*x)).collect();
            format!("[{}]", body.join(","))
        }
        JobValue::Text(s) => format!("\"{}\"", escape(s)),
        JobValue::Program(p) => {
            let scalars: Vec<String> = p
                .scalars
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", escape(k), json_num(*v)))
                .collect();
            let printed: Vec<String> = p
                .printed
                .iter()
                .map(|l| format!("\"{}\"", escape(l)))
                .collect();
            format!(
                "{{\"ret\":{},\"scalars\":{{{}}},\"printed\":[{}]}}",
                json_num(p.ret),
                scalars.join(","),
                printed.join(",")
            )
        }
    }
}

fn report_reply(id: u64, report: ServiceReport) -> String {
    match &report.outcome {
        Ok(run) => format!(
            "{{\"ok\":true,\"id\":{id},\"tenant\":\"{}\",\"worker\":{},\
             \"queue_wait_host_ns\":{},\"service_host_ns\":{},\"vt_ns\":{},\
             \"msgs\":{},\"value\":{}}}",
            escape(&report.tenant),
            report.worker,
            report.queue_wait.as_nanos(),
            report.service_host.as_nanos(),
            run.vt_ns,
            run.msgs(),
            value_json(&run.result)
        ),
        Err(e) => {
            let kind = match e {
                JobError::DeadlineExpired { .. } => "deadline_expired",
                JobError::Panicked(_) => "panicked",
                JobError::Lost => "lost",
            };
            format!(
                "{{\"ok\":false,\"id\":{id},\"error\":\"{kind}\",\"detail\":\"{}\"}}",
                escape(&e.to_string())
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bad_lines_get_typed_errors() {
        // Exercised without a live service: parsing failures never
        // reach the dispatcher.
        assert!(err_reply("bad_json", "x").contains("\"ok\":false"));
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(2.5), "2.5");
        let v = value_json(&JobValue::Nums(vec![1.0, 2.0]));
        assert_eq!(v, "[1,2]");
    }
}
