//! The dispatcher: admission control, weighted fair share, deadlines,
//! a pool of warm clusters, graceful drain.
//!
//! One [`Service`] owns `pool` worker threads, each holding a warm
//! [`Cluster`] built from the same validated `OmpConfig`. Submissions
//! go through one bounded multi-tenant queue; workers pull jobs by
//! deficit round-robin over the per-tenant queues (quantum = the
//! tenant's weight, cost 1 per job), so under saturation completed-job
//! throughput is weight-proportional. Within a tenant, higher
//! [`JobRequest::priority`] runs first, FIFO among equals.
//!
//! Everything observable is deterministic when it needs to be: a
//! *held* service ([`ServiceConfig::hold`](crate::ServiceConfig::hold))
//! admits without dispatching, so queue-full rejection points and — with
//! a pool of one — the exact dispatch order are reproducible, which is
//! what the fair-share tests and the service bench pin.

use crate::config::{ClosureFactory, ClosureJob, ServiceConfig};
use crate::metrics::{ServiceMetrics, ServiceMetricsSnapshot};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use nomp::{Cluster, Env, Job, OmpConfig, RunReport};
use ompc::{Compiled, ProgramOutput};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ----------------------------------------------------------------------
// Job payloads and results
// ----------------------------------------------------------------------

/// What a service job evaluates to. Closure jobs return one of these
/// directly; `.omp` jobs return [`JobValue::Program`] with the
/// translated program's full output.
#[derive(Debug, Clone, PartialEq)]
pub enum JobValue {
    /// No payload (side-effect-only job).
    Unit,
    /// A single number.
    Num(f64),
    /// A vector of numbers.
    Nums(Vec<f64>),
    /// A text payload.
    Text(String),
    /// A translated `.omp` program's final state.
    Program(ProgramOutput),
}

impl JobValue {
    /// The number, if this is [`JobValue::Num`].
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JobValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// The work a [`JobRequest`] carries.
pub(crate) enum WorkSpec {
    /// A Rust master closure.
    Closure(ClosureJob),
    /// A compiled `.omp` program (cheap to share across submissions).
    Omp(Arc<Compiled>),
    /// A closure workload registered by name in the `ServiceConfig`.
    Named(String),
}

/// One job submission: the work plus its tenant, priority and deadline.
pub struct JobRequest {
    pub(crate) tenant: Option<String>,
    pub(crate) priority: u8,
    pub(crate) deadline: Option<Duration>,
    pub(crate) work: WorkSpec,
}

impl JobRequest {
    /// A job from a Rust master closure over [`Env`].
    pub fn closure(f: impl FnOnce(&mut Env<'_>) -> JobValue + Send + 'static) -> Self {
        JobRequest {
            tenant: None,
            priority: 0,
            deadline: None,
            work: WorkSpec::Closure(Box::new(f)),
        }
    }

    /// A job running a compiled `.omp` program.
    pub fn omp(prog: Compiled) -> Self {
        Self::omp_shared(Arc::new(prog))
    }

    /// A job running an already-shared compiled program (no clone of
    /// the program per submission).
    pub fn omp_shared(prog: Arc<Compiled>) -> Self {
        JobRequest {
            tenant: None,
            priority: 0,
            deadline: None,
            work: WorkSpec::Omp(prog),
        }
    }

    /// A job running a closure workload registered with
    /// [`ServiceConfig::closure`](crate::ServiceConfig::closure) — the
    /// submission form available to TCP clients.
    pub fn named(name: impl Into<String>) -> Self {
        JobRequest {
            tenant: None,
            priority: 0,
            deadline: None,
            work: WorkSpec::Named(name.into()),
        }
    }

    /// Attribute the job to a tenant (default: the first registered
    /// tenant).
    pub fn tenant(mut self, name: impl Into<String>) -> Self {
        self.tenant = Some(name.into());
        self
    }

    /// Priority within the tenant's queue (higher runs first; default 0).
    pub fn priority(mut self, p: u8) -> Self {
        self.priority = p;
        self
    }

    /// Host-time deadline measured from admission. A job still queued
    /// when its deadline passes fails fast with
    /// [`JobError::DeadlineExpired`] instead of occupying a cluster; a
    /// deadline the service can prove unmeetable at admission is
    /// rejected up front.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Typed admission backpressure: why a submission was not queued.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// The bounded queue is at capacity.
    QueueFull {
        /// Jobs queued at rejection time.
        depth: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The service is draining and admits nothing new.
    Draining,
    /// The deadline cannot be met (zero, or provably shorter than the
    /// expected queue delay).
    DeadlineUnmeetable {
        /// The requested deadline in milliseconds.
        deadline_ms: f64,
        /// The service's completion estimate in milliseconds.
        estimate_ms: f64,
    },
    /// The tenant is not registered.
    UnknownTenant(String),
    /// The named closure workload is not registered.
    UnknownProgram(String),
    /// The static analyzer denied the `.omp` program at admission
    /// ([`ServiceConfig::deny_races`](crate::ServiceConfig::deny_races)):
    /// the denied findings, sorted by source position.
    Lint(Vec<ompc::Lint>),
}

impl Rejected {
    /// Stable short name for logs, metrics and the TCP protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::Draining => "draining",
            Rejected::DeadlineUnmeetable { .. } => "deadline_unmeetable",
            Rejected::UnknownTenant(_) => "unknown_tenant",
            Rejected::UnknownProgram(_) => "unknown_program",
            Rejected::Lint(_) => "lint",
        }
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { depth, bound } => {
                write!(f, "queue full ({depth} of {bound} jobs queued)")
            }
            Rejected::Draining => write!(f, "service is draining"),
            Rejected::DeadlineUnmeetable {
                deadline_ms,
                estimate_ms,
            } => write!(
                f,
                "deadline {deadline_ms} ms unmeetable (estimated completion {estimate_ms:.3} ms)"
            ),
            Rejected::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            Rejected::UnknownProgram(p) => write!(f, "unknown registered closure {p:?}"),
            Rejected::Lint(lints) => {
                write!(f, "static analyzer denied the program: ")?;
                for (i, l) in lints.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{l}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Why an admitted job produced no [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The deadline passed while the job waited; it was failed fast
    /// without occupying a cluster.
    DeadlineExpired {
        /// The requested deadline in milliseconds.
        deadline_ms: f64,
        /// How long the job actually waited, in milliseconds.
        waited_ms: f64,
        /// A human-readable account of the queue state at expiry.
        diagnostic: String,
    },
    /// The job body panicked on its cluster (the pool replaced the
    /// cluster; the service keeps serving).
    Panicked(String),
    /// The service died before reporting (a worker was lost).
    Lost,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::DeadlineExpired {
                deadline_ms,
                waited_ms,
                diagnostic,
            } => write!(
                f,
                "deadline {deadline_ms} ms expired after {waited_ms:.3} ms queued: {diagnostic}"
            ),
            JobError::Panicked(m) => write!(f, "job panicked: {m}"),
            JobError::Lost => write!(f, "the service was lost before the job reported"),
        }
    }
}

impl std::error::Error for JobError {}

/// Everything the service reports about one admitted job.
#[derive(Debug)]
pub struct ServiceReport {
    /// Service-wide job id (admission order).
    pub id: u64,
    /// The tenant the job ran under.
    pub tenant: String,
    /// Pool slot that served it (`usize::MAX` if never dispatched).
    pub worker: usize,
    /// Host time from admission to dispatch.
    pub queue_wait: Duration,
    /// Host time the job spent running on its cluster.
    pub service_host: Duration,
    /// The job's [`RunReport`] — or the typed reason there is none.
    pub outcome: Result<RunReport<JobValue>, JobError>,
}

impl ServiceReport {
    /// The job's result payload, if it completed.
    pub fn value(&self) -> Option<&JobValue> {
        self.outcome.as_ref().ok().map(|r| &r.result)
    }
}

/// A claim on one admitted job's eventual [`ServiceReport`].
pub struct Ticket {
    id: u64,
    tenant: String,
    rx: Receiver<ServiceReport>,
}

impl Ticket {
    /// Service-wide id of the admitted job.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job's report arrives. Never hangs past a drain:
    /// every admitted job is completed or failed before the workers
    /// exit, and a lost worker surfaces as [`JobError::Lost`].
    pub fn wait(self) -> ServiceReport {
        let (id, tenant) = (self.id, self.tenant.clone());
        self.rx.recv().unwrap_or(ServiceReport {
            id,
            tenant,
            worker: usize::MAX,
            queue_wait: Duration::ZERO,
            service_host: Duration::ZERO,
            outcome: Err(JobError::Lost),
        })
    }

    /// The report if it is already available (non-blocking).
    pub fn try_wait(&self) -> Option<ServiceReport> {
        match self.rx.try_recv() {
            Ok(r) => Some(r),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(ServiceReport {
                id: self.id,
                tenant: self.tenant.clone(),
                worker: usize::MAX,
                queue_wait: Duration::ZERO,
                service_host: Duration::ZERO,
                outcome: Err(JobError::Lost),
            }),
        }
    }
}

// ----------------------------------------------------------------------
// Dispatch state
// ----------------------------------------------------------------------

/// The work a worker actually runs (names already resolved).
enum Work {
    Closure(ClosureJob),
    Omp(Arc<Compiled>),
}

/// One admitted, not-yet-dispatched job.
struct Queued {
    id: u64,
    tenant: usize,
    priority: u8,
    seq: u64,
    submitted: Instant,
    deadline: Option<Instant>,
    deadline_req: Option<Duration>,
    work: Work,
    done: Sender<ServiceReport>,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    /// Max-heap order: higher priority first, then earlier submission.
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

struct DispatchState {
    /// Per-tenant priority queues.
    queues: Vec<BinaryHeap<Queued>>,
    /// Per-tenant deficit-round-robin credits.
    credits: Vec<u64>,
    /// Tenant the scan starts from.
    cursor: usize,
    /// Jobs admitted and not yet dispatched (over all tenants).
    queued_total: usize,
    /// Jobs currently running on pool clusters.
    in_flight: usize,
    /// No new admissions; drain the backlog and stop.
    draining: bool,
    /// Whether workers may dispatch (false while held).
    open: bool,
    next_id: u64,
    next_seq: u64,
    dispatch_log: Option<Vec<(usize, u64)>>,
}

struct TenantCfg {
    name: String,
    weight: u64,
}

/// Shared between the front door, the TCP endpoint and the workers.
struct Shared {
    cluster_cfg: OmpConfig,
    tenants: Vec<TenantCfg>,
    programs: Vec<(String, ClosureFactory)>,
    queue_bound: usize,
    pool: usize,
    default_deadline: Option<Duration>,
    deny_races: bool,
    state: Mutex<DispatchState>,
    /// Wakes workers: new work, an open, or a drain.
    work_ready: Condvar,
    /// Wakes idle-waiters: queue and in-flight both hit zero.
    idle: Condvar,
    metrics: Arc<ServiceMetrics>,
}

impl Shared {
    fn tenant_index(&self, name: Option<&str>) -> Result<usize, Rejected> {
        match name {
            None => Ok(0),
            Some(n) => self
                .tenants
                .iter()
                .position(|t| t.name == n)
                .ok_or_else(|| Rejected::UnknownTenant(n.to_string())),
        }
    }

    fn resolve(&self, work: WorkSpec) -> Result<Work, Rejected> {
        match work {
            WorkSpec::Closure(f) => Ok(Work::Closure(f)),
            WorkSpec::Omp(p) => Ok(Work::Omp(p)),
            WorkSpec::Named(name) => self
                .programs
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, f)| Work::Closure(f()))
                .ok_or(Rejected::UnknownProgram(name)),
        }
    }

    fn submit(&self, req: JobRequest) -> Result<Ticket, Rejected> {
        let tenant = self.tenant_index(req.tenant.as_deref())?;
        let tm = self.metrics.tenant(tenant);
        // Admission-time static analysis: under `deny_races`, a `.omp`
        // program with a provable race never reaches a cluster.
        if self.deny_races {
            if let WorkSpec::Omp(prog) = &req.work {
                let mut lints = prog.lints();
                ompc::promote_races(&mut lints);
                lints.retain(|l| l.level == ompc::LintLevel::Deny);
                if !lints.is_empty() {
                    tm.rejected_lint.inc();
                    return Err(Rejected::Lint(lints));
                }
            }
        }
        let work = match self.resolve(req.work) {
            Ok(w) => w,
            Err(r) => {
                tm.rejected_unknown.inc();
                return Err(r);
            }
        };
        let deadline = req.deadline.or(self.default_deadline);

        let mut st = self.state.lock().expect("dispatcher lock");
        if st.draining {
            tm.rejected_draining.inc();
            return Err(Rejected::Draining);
        }
        if let Some(d) = deadline {
            let deadline_ms = d.as_secs_f64() * 1e3;
            if d.is_zero() {
                tm.rejected_deadline.inc();
                return Err(Rejected::DeadlineUnmeetable {
                    deadline_ms,
                    estimate_ms: f64::INFINITY,
                });
            }
            // Once the service has seen completions, reject deadlines
            // provably shorter than the expected queue delay: mean
            // service time × (jobs ahead / pool + this job).
            let mean_ns = self.metrics.snapshot().service_host_merged().mean();
            if mean_ns > 0.0 {
                let estimate_ns = mean_ns * (st.queued_total as f64 / self.pool as f64 + 1.0);
                if estimate_ns > d.as_nanos() as f64 {
                    tm.rejected_deadline.inc();
                    return Err(Rejected::DeadlineUnmeetable {
                        deadline_ms,
                        estimate_ms: estimate_ns / 1e6,
                    });
                }
            }
        }
        if st.queued_total >= self.queue_bound {
            tm.rejected_queue_full.inc();
            return Err(Rejected::QueueFull {
                depth: st.queued_total,
                bound: self.queue_bound,
            });
        }

        let id = st.next_id;
        st.next_id += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        let now = Instant::now();
        let (tx, rx) = unbounded();
        st.queues[tenant].push(Queued {
            id,
            tenant,
            priority: req.priority,
            seq,
            submitted: now,
            deadline: deadline.map(|d| now + d),
            deadline_req: deadline,
            work,
            done: tx,
        });
        st.queued_total += 1;
        tm.admitted.inc();
        self.metrics.queue_depth.set(st.queued_total as i64);
        drop(st);
        self.work_ready.notify_one();
        Ok(Ticket {
            id,
            tenant: self.tenants[tenant].name.clone(),
            rx,
        })
    }

    /// One deficit-round-robin pick. Credits replenish (quantum = the
    /// tenant's weight) only when no backlogged tenant has credit left,
    /// and empty queues forfeit theirs — so over any saturated window
    /// the dispatch mix is weight-proportional.
    fn drr_pick(&self, st: &mut DispatchState) -> Option<Queued> {
        if st.queued_total == 0 {
            return None;
        }
        let n = self.tenants.len();
        loop {
            for k in 0..n {
                let t = (st.cursor + k) % n;
                if st.queues[t].is_empty() {
                    st.credits[t] = 0;
                    continue;
                }
                if st.credits[t] > 0 {
                    st.credits[t] -= 1;
                    let q = st.queues[t].pop().expect("non-empty tenant queue");
                    if st.queues[t].is_empty() {
                        st.credits[t] = 0;
                    }
                    // Spend the remaining quantum before moving on.
                    st.cursor = if st.credits[t] > 0 { t } else { (t + 1) % n };
                    return Some(q);
                }
            }
            for t in 0..n {
                st.credits[t] = if st.queues[t].is_empty() {
                    0
                } else {
                    self.tenants[t].weight
                };
            }
        }
    }

    /// Worker wait loop: the next job to run, plus the queue depth just
    /// after the pick (for deadline diagnostics). `None` means drained.
    fn next_job(&self) -> Option<(Queued, usize)> {
        let mut st = self.state.lock().expect("dispatcher lock");
        loop {
            if st.open {
                if let Some(q) = self.drr_pick(&mut st) {
                    st.queued_total -= 1;
                    st.in_flight += 1;
                    self.metrics.queue_depth.set(st.queued_total as i64);
                    self.metrics.jobs_in_flight.set(st.in_flight as i64);
                    if let Some(log) = st.dispatch_log.as_mut() {
                        log.push((q.tenant, q.id));
                    }
                    let depth = st.queued_total;
                    return Some((q, depth));
                }
            }
            if st.draining && st.queued_total == 0 {
                return None;
            }
            st = self.work_ready.wait(st).expect("dispatcher lock");
        }
    }

    /// Post-job bookkeeping (all outcomes).
    fn job_done(&self) {
        let mut st = self.state.lock().expect("dispatcher lock");
        st.in_flight -= 1;
        self.metrics.jobs_in_flight.set(st.in_flight as i64);
        if st.in_flight == 0 && st.queued_total == 0 {
            self.idle.notify_all();
        }
    }

    fn open(&self) {
        let mut st = self.state.lock().expect("dispatcher lock");
        st.open = true;
        drop(st);
        self.work_ready.notify_all();
    }

    fn begin_drain(&self) {
        let mut st = self.state.lock().expect("dispatcher lock");
        st.draining = true;
        // A held service drains its backlog too: nothing may stay queued.
        st.open = true;
        drop(st);
        self.work_ready.notify_all();
    }

    fn await_idle(&self) {
        let mut st = self.state.lock().expect("dispatcher lock");
        while st.queued_total > 0 || st.in_flight > 0 {
            st = self.idle.wait(st).expect("dispatcher lock");
        }
    }

    fn status(&self) -> ServiceStatus {
        let st = self.state.lock().expect("dispatcher lock");
        ServiceStatus {
            pool: self.pool,
            queue_depth: st.queued_total,
            in_flight: st.in_flight,
            open: st.open,
            draining: st.draining,
            tenants: self
                .tenants
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let m = self.metrics.tenant(i);
                    TenantStatus {
                        name: t.name.clone(),
                        weight: t.weight,
                        queued: st.queues[i].len(),
                        admitted: m.admitted.get(),
                        completed: m.completed.get(),
                        expired: m.expired.get(),
                        failed: m.failed.get(),
                        rejected: m.rejected_queue_full.get()
                            + m.rejected_draining.get()
                            + m.rejected_deadline.get()
                            + m.rejected_unknown.get(),
                    }
                })
                .collect(),
        }
    }
}

// ----------------------------------------------------------------------
// Worker
// ----------------------------------------------------------------------

fn panic_message(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop(shared: Arc<Shared>, slot: usize) {
    let mut cluster = Cluster::from_config(shared.cluster_cfg.clone());
    while let Some((q, depth)) = shared.next_job() {
        let tm = shared.metrics.tenant(q.tenant);
        let waited = q.submitted.elapsed();
        tm.queue_wait_host_ns.record(waited.as_nanos() as u64);

        // Fail fast on an expired deadline: never occupy a cluster.
        if let Some(dl) = q.deadline {
            if Instant::now() >= dl {
                tm.expired.inc();
                let deadline_ms = q.deadline_req.map(|d| d.as_secs_f64() * 1e3).unwrap_or(0.0);
                let report = ServiceReport {
                    id: q.id,
                    tenant: shared.tenants[q.tenant].name.clone(),
                    worker: slot,
                    queue_wait: waited,
                    service_host: Duration::ZERO,
                    outcome: Err(JobError::DeadlineExpired {
                        deadline_ms,
                        waited_ms: waited.as_secs_f64() * 1e3,
                        diagnostic: format!(
                            "job {} (tenant {:?}) expired in queue: {} job(s) still queued, \
                             pool of {}",
                            q.id, shared.tenants[q.tenant].name, depth, shared.pool
                        ),
                    }),
                };
                let _ = q.done.send(report);
                shared.job_done();
                continue;
            }
        }

        let t0 = Instant::now();
        let ran = catch_unwind(AssertUnwindSafe(|| match q.work {
            Work::Closure(f) => cluster.run(Job::new(f)),
            Work::Omp(p) => cluster.run(&*p).map(|r| r.map(JobValue::Program)),
        }));
        let service_host = t0.elapsed();
        let outcome = match ran {
            Ok(Ok(report)) => {
                tm.completed.inc();
                tm.service_host_ns.record(service_host.as_nanos() as u64);
                shared
                    .metrics
                    .e2e_host_ns
                    .record(q.submitted.elapsed().as_nanos() as u64);
                Ok(report)
            }
            Ok(Err(e)) => {
                // ClusterDown without a panic: replace the cluster and
                // report the job as failed.
                tm.failed.inc();
                cluster = Cluster::from_config(shared.cluster_cfg.clone());
                Err(JobError::Panicked(format!("cluster refused the job: {e}")))
            }
            Err(p) => {
                // The job body panicked; the cluster is dead. The pool
                // self-heals: replace it and keep serving (the session
                // API's per-job reset means a fresh cluster serves
                // exactly what the old one would have).
                tm.failed.inc();
                cluster = Cluster::from_config(shared.cluster_cfg.clone());
                Err(JobError::Panicked(panic_message(p)))
            }
        };
        let report = ServiceReport {
            id: q.id,
            tenant: shared.tenants[q.tenant].name.clone(),
            worker: slot,
            queue_wait: waited,
            service_host,
            outcome,
        };
        let _ = q.done.send(report);
        shared.job_done();
    }
    // Drained: tear the warm cluster down, joining its node threads.
    if cluster.is_alive() {
        cluster.shutdown();
    }
}

// ----------------------------------------------------------------------
// Service + handle
// ----------------------------------------------------------------------

/// A live snapshot of the dispatcher's state (the TCP `status` verb).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStatus {
    /// Pool size (warm clusters / worker threads).
    pub pool: usize,
    /// Jobs admitted and not yet dispatched.
    pub queue_depth: usize,
    /// Jobs currently running.
    pub in_flight: usize,
    /// Whether dispatch is enabled (false while held).
    pub open: bool,
    /// Whether the service is draining.
    pub draining: bool,
    /// Per-tenant queue and lifecycle counts.
    pub tenants: Vec<TenantStatus>,
}

/// One tenant's row in a [`ServiceStatus`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStatus {
    /// Tenant name.
    pub name: String,
    /// Fair-share weight.
    pub weight: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// Jobs admitted so far.
    pub admitted: u64,
    /// Jobs completed so far.
    pub completed: u64,
    /// Jobs that expired in queue.
    pub expired: u64,
    /// Jobs that failed (panicked).
    pub failed: u64,
    /// Submissions rejected (all reasons).
    pub rejected: u64,
}

/// What a graceful drain finished with (totals over the service's life).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainSummary {
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Jobs that expired in queue.
    pub expired: u64,
    /// Jobs that failed (panicked).
    pub failed: u64,
    /// Submissions rejected.
    pub rejected: u64,
}

/// A cloneable front door to a running [`Service`]: submit jobs, read
/// status and metrics, start a drain. Handles stay valid during a
/// drain; submissions are then rejected with [`Rejected::Draining`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Admit one job, returning its [`Ticket`] — or the typed reason it
    /// was not admitted. Never blocks on cluster work.
    pub fn submit(&self, req: JobRequest) -> Result<Ticket, Rejected> {
        self.shared.submit(req)
    }

    /// The dispatcher's current state.
    pub fn status(&self) -> ServiceStatus {
        self.shared.status()
    }

    /// A point-in-time copy of the service metrics.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The live metrics block (lock-free; snapshot on any cadence).
    pub fn metrics_handle(&self) -> Arc<ServiceMetrics> {
        self.shared.metrics.clone()
    }

    /// Enable dispatch on a held service.
    pub fn open(&self) {
        self.shared.open();
    }

    /// Stop admitting; already-admitted jobs keep running.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// Block until no job is queued or in flight. (On a held,
    /// non-draining service this waits until someone opens it.)
    pub fn await_idle(&self) {
        self.shared.await_idle();
    }
}

/// A running cluster-pool service. See the crate docs for the model.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    drained: bool,
}

impl Service {
    /// Spawn the pool (workers build their clusters concurrently).
    pub(crate) fn start(cfg: ServiceConfig, cluster_cfg: OmpConfig) -> Service {
        let tenants = cfg.tenant_table();
        let default_deadline = cfg.default_deadline();
        let metrics = Arc::new(ServiceMetrics::new(&tenants));
        let n = tenants.len();
        let shared = Arc::new(Shared {
            cluster_cfg,
            tenants: tenants
                .into_iter()
                .map(|(name, weight)| TenantCfg { name, weight })
                .collect(),
            programs: cfg.programs,
            queue_bound: cfg.queue_bound,
            pool: cfg.pool,
            default_deadline,
            deny_races: cfg.deny_races,
            state: Mutex::new(DispatchState {
                queues: (0..n).map(|_| BinaryHeap::new()).collect(),
                credits: vec![0; n],
                cursor: 0,
                queued_total: 0,
                in_flight: 0,
                draining: false,
                open: !cfg.hold,
                next_id: 0,
                next_seq: 0,
                dispatch_log: cfg.record_dispatch.then(Vec::new),
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            metrics,
        });
        let workers = (0..cfg.pool)
            .map(|slot| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("now-service-{slot}"))
                    .spawn(move || worker_loop(shared, slot))
                    .expect("spawn pool worker")
            })
            .collect();
        Service {
            shared,
            workers,
            drained: false,
        }
    }

    /// A cloneable front door to this service.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: self.shared.clone(),
        }
    }

    /// Admit one job (see [`ServiceHandle::submit`]).
    pub fn submit(&self, req: JobRequest) -> Result<Ticket, Rejected> {
        self.shared.submit(req)
    }

    /// The dispatcher's current state.
    pub fn status(&self) -> ServiceStatus {
        self.shared.status()
    }

    /// A point-in-time copy of the service metrics.
    pub fn metrics(&self) -> ServiceMetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The live metrics block (lock-free; snapshot on any cadence).
    pub fn metrics_handle(&self) -> Arc<ServiceMetrics> {
        self.shared.metrics.clone()
    }

    /// Pool size (warm clusters / worker threads).
    pub fn pool(&self) -> usize {
        self.shared.pool
    }

    /// Enable dispatch on a held service
    /// ([`ServiceConfig::hold`](crate::ServiceConfig::hold)).
    pub fn open(&self) {
        self.shared.open();
    }

    /// Stop admitting; already-admitted jobs keep running.
    pub fn begin_drain(&self) {
        self.shared.begin_drain();
    }

    /// The recorded dispatch order as `(tenant name, job id)` pairs
    /// (empty unless
    /// [`ServiceConfig::record_dispatch`](crate::ServiceConfig::record_dispatch)).
    pub fn dispatch_log(&self) -> Vec<(String, u64)> {
        let st = self.shared.state.lock().expect("dispatcher lock");
        st.dispatch_log
            .as_deref()
            .unwrap_or_default()
            .iter()
            .map(|&(t, id)| (self.shared.tenants[t].name.clone(), id))
            .collect()
    }

    /// Graceful drain: stop admitting, finish every admitted job, join
    /// every pool worker (each tears its warm cluster down). Returns
    /// lifetime totals. No thread outlives this call.
    pub fn drain(mut self) -> DrainSummary {
        self.drain_impl();
        let s = self.shared.metrics.snapshot();
        DrainSummary {
            admitted: s.admitted(),
            completed: s.completed(),
            expired: s.expired(),
            failed: s.failed(),
            rejected: s.rejected(),
        }
    }

    fn drain_impl(&mut self) {
        if self.drained {
            return;
        }
        self.shared.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.drained = true;
    }
}

impl Drop for Service {
    /// Dropping a service drains it (same protocol, summary discarded).
    fn drop(&mut self) {
        self.drain_impl();
    }
}
