//! `ServiceConfig`: the one validated way to bring a cluster pool up.
//!
//! Mirrors the `ClusterBuilder` contract: all setters are infallible,
//! [`ServiceConfig::build`] validates everything at once, and every
//! rejection is a typed [`NowError`] — junk pool sizes, tenant weights,
//! queue bounds and deadlines come back as
//! [`NowError::InvalidService`], never a panic. Cluster topology checks
//! are delegated to [`ClusterBuilder::validate`], so the service
//! inherits every invariant of the session API.

use crate::service::{JobValue, Service};
use nomp::{Cluster, ClusterBuilder, Env, NowError, OmpConfig};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on pool size (each pool slot is a full warm cluster).
pub(crate) const MAX_POOL: usize = 64;
/// Upper bound on the admission queue bound.
pub(crate) const MAX_QUEUE: usize = 1 << 20;
/// Upper bound on registered tenants.
pub(crate) const MAX_TENANTS: usize = 256;
/// Upper bound on a tenant's fair-share weight.
pub(crate) const MAX_WEIGHT: u64 = 1_000_000;
/// Upper bound on `pool × nodes × threads_per_node` (host threads are
/// real; a service must not fork-bomb the host).
pub(crate) const MAX_POOL_THREADS: usize = 2048;

/// A boxed closure job as the service runs it: a master function over
/// [`Env`] returning a [`JobValue`].
pub type ClosureJob = Box<dyn FnOnce(&mut Env<'_>) -> JobValue + Send>;

/// A factory producing fresh [`ClosureJob`]s — how named closure
/// workloads are registered so external (TCP) clients can run them.
pub type ClosureFactory = Arc<dyn Fn() -> ClosureJob + Send + Sync>;

/// Validated configuration surface for a [`Service`].
///
/// Defaults: a pool of 2 clusters built from the default
/// [`Cluster::builder`] (the paper's 8-workstation platform), a queue
/// bound of 1024, a single implicit tenant `"default"` with weight 1,
/// no default deadline, dispatch starting immediately.
pub struct ServiceConfig {
    pub(crate) pool: usize,
    pub(crate) queue_bound: usize,
    pub(crate) tenants: Vec<(String, u64)>,
    pub(crate) default_deadline_ms: Option<f64>,
    pub(crate) hold: bool,
    pub(crate) record_dispatch: bool,
    pub(crate) deny_races: bool,
    pub(crate) cluster: ClusterBuilder,
    pub(crate) programs: Vec<(String, ClosureFactory)>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceConfig {
    /// Start configuring a service with the defaults above.
    pub fn new() -> Self {
        ServiceConfig {
            pool: 2,
            queue_bound: 1024,
            tenants: Vec::new(),
            default_deadline_ms: None,
            hold: false,
            record_dispatch: false,
            deny_races: false,
            cluster: Cluster::builder(),
            programs: Vec::new(),
        }
    }

    /// Number of warm clusters in the pool (default 2, max
    /// [`MAX_POOL`](crate::ServiceConfig::validate)-checked).
    pub fn pool(mut self, n: usize) -> Self {
        self.pool = n;
        self
    }

    /// Admission-queue bound: submissions beyond this many queued jobs
    /// are rejected with `Rejected::QueueFull` (default 1024).
    pub fn queue_bound(mut self, n: usize) -> Self {
        self.queue_bound = n;
        self
    }

    /// Register a tenant with a fair-share weight. Completed-job
    /// throughput under saturation is proportional to the weights
    /// (deficit round-robin). When no tenant is registered, a single
    /// `"default"` tenant with weight 1 is implied.
    pub fn tenant(mut self, name: impl Into<String>, weight: u64) -> Self {
        self.tenants.push((name.into(), weight));
        self
    }

    /// The cluster every pool slot runs: one topology/cost-model
    /// configuration, validated once, cloned into each warm cluster.
    pub fn cluster(mut self, builder: ClusterBuilder) -> Self {
        self.cluster = builder;
        self
    }

    /// Register a named closure workload. TCP clients (which cannot
    /// ship Rust closures over the wire) submit `{"closure": "<name>"}`
    /// and the service runs a fresh job from this factory.
    pub fn closure(
        mut self,
        name: impl Into<String>,
        factory: impl Fn() -> ClosureJob + Send + Sync + 'static,
    ) -> Self {
        self.programs.push((name.into(), Arc::new(factory)));
        self
    }

    /// Default host-time deadline applied to jobs submitted without one
    /// (milliseconds; must be finite and positive).
    pub fn default_deadline_ms(mut self, ms: f64) -> Self {
        self.default_deadline_ms = Some(ms);
        self
    }

    /// Start the service *held*: jobs are admitted and queued but not
    /// dispatched until [`Service::open`] is called. With a held
    /// service, queue-full rejections and the deficit-round-robin
    /// dispatch order are deterministic — the deterministic backbone of
    /// the fair-share tests and the service bench.
    pub fn hold(mut self) -> Self {
        self.hold = true;
        self
    }

    /// Record the dispatch order (tenant, job id) for later inspection
    /// via [`Service::dispatch_log`]. Off by default.
    pub fn record_dispatch(mut self, on: bool) -> Self {
        self.record_dispatch = on;
        self
    }

    /// Run the static race analyzer on every submitted `.omp` program
    /// and reject racy ones at admission with
    /// [`Rejected::Lint`](crate::Rejected::Lint) (race-class findings
    /// `OMP201`..`OMP204` promoted to errors; structural warnings do
    /// not reject). Off by default — analysis costs one pass over the
    /// program's IR per submission.
    pub fn deny_races(mut self, on: bool) -> Self {
        self.deny_races = on;
        self
    }

    /// Validate this configuration without spawning anything.
    ///
    /// Never panics: every junk input — zero or oversized pool, zero or
    /// absurd queue bound, zero/overflowing tenant weights, duplicate
    /// or empty tenant names, non-finite deadlines — comes back as
    /// [`NowError::InvalidService`]; cluster problems come back as the
    /// session API's own typed errors.
    pub fn validate(&self) -> Result<(), NowError> {
        self.check().map(|_| ())
    }

    /// Validate and bring the service up: build the pool of warm
    /// clusters and start dispatching (unless [`hold`](Self::hold)).
    pub fn build(self) -> Result<Service, NowError> {
        let cluster = self.check()?;
        Ok(Service::start(self, cluster))
    }

    /// All validation in one place, returning the per-slot cluster
    /// configuration a build would use.
    pub(crate) fn check(&self) -> Result<OmpConfig, NowError> {
        let bad = |m: String| Err(NowError::InvalidService(m));
        if self.pool == 0 {
            return bad("a pool needs at least one cluster".into());
        }
        if self.pool > MAX_POOL {
            return bad(format!(
                "pool of {} clusters exceeds the bound {MAX_POOL}",
                self.pool
            ));
        }
        if self.queue_bound == 0 {
            return bad("queue bound must be at least 1".into());
        }
        if self.queue_bound > MAX_QUEUE {
            return bad(format!(
                "queue bound {} exceeds the bound {MAX_QUEUE}",
                self.queue_bound
            ));
        }
        if self.tenants.len() > MAX_TENANTS {
            return bad(format!(
                "{} tenants exceed the bound {MAX_TENANTS}",
                self.tenants.len()
            ));
        }
        for (i, (name, weight)) in self.tenants.iter().enumerate() {
            if name.is_empty() {
                return bad(format!("tenant {i} has an empty name"));
            }
            if *weight == 0 {
                return bad(format!("tenant {name:?} has weight 0 (it could never run)"));
            }
            if *weight > MAX_WEIGHT {
                return bad(format!(
                    "tenant {name:?} weight {weight} exceeds the bound {MAX_WEIGHT}"
                ));
            }
            if self.tenants[..i].iter().any(|(n, _)| n == name) {
                return bad(format!("duplicate tenant {name:?}"));
            }
        }
        if let Some(ms) = self.default_deadline_ms {
            if !ms.is_finite() || ms <= 0.0 {
                return bad(format!(
                    "default deadline {ms} ms (expected a finite positive duration)"
                ));
            }
        }
        for (i, (name, _)) in self.programs.iter().enumerate() {
            if name.is_empty() {
                return bad(format!("registered closure {i} has an empty name"));
            }
            if self.programs[..i].iter().any(|(n, _)| n == name) {
                return bad(format!("duplicate registered closure {name:?}"));
            }
        }
        let cfg = self.cluster.validate()?;
        let threads = cfg.threads().saturating_mul(self.pool);
        if threads > MAX_POOL_THREADS {
            return bad(format!(
                "pool of {} × {} topology needs {threads} host application threads \
                 (bound {MAX_POOL_THREADS})",
                self.pool,
                cfg.topology()
            ));
        }
        Ok(cfg)
    }

    /// Tenant table the service will run with: the registered tenants,
    /// or the single implicit `"default"` tenant.
    pub(crate) fn tenant_table(&self) -> Vec<(String, u64)> {
        if self.tenants.is_empty() {
            vec![("default".to_string(), 1)]
        } else {
            self.tenants.clone()
        }
    }

    /// The default deadline as a `Duration`, if configured (validated
    /// finite and positive by [`check`](Self::check)).
    pub(crate) fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline_ms
            .map(|ms| Duration::from_secs_f64(ms / 1e3))
    }
}
