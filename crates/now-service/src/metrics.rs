//! Service-level metrics: the dispatcher's always-on instrumentation.
//!
//! Follows the workspace metrics contract (`now-metrics`): recording is
//! lock-free relaxed atomics, allocation happens once at service build,
//! snapshots merge, and export is Prometheus text or JSON that the
//! crate's own validators accept. The domain block lives here because
//! `now-service` owns the instrumented types, exactly as `tmk` owns the
//! cluster-level blocks.

use now_metrics::json::escape;
use now_metrics::{Counter, Gauge, Histogram, HistogramSnapshot, PromText};
use std::time::Instant;

/// Per-tenant live counters and latency histograms.
#[derive(Debug)]
pub(crate) struct TenantMetrics {
    pub(crate) name: String,
    pub(crate) weight: u64,
    pub(crate) admitted: Counter,
    pub(crate) completed: Counter,
    pub(crate) expired: Counter,
    pub(crate) failed: Counter,
    pub(crate) rejected_queue_full: Counter,
    pub(crate) rejected_draining: Counter,
    pub(crate) rejected_deadline: Counter,
    pub(crate) rejected_unknown: Counter,
    pub(crate) rejected_lint: Counter,
    pub(crate) queue_wait_host_ns: Histogram,
    pub(crate) service_host_ns: Histogram,
}

impl TenantMetrics {
    fn new(name: String, weight: u64) -> Self {
        TenantMetrics {
            name,
            weight,
            admitted: Counter::new(),
            completed: Counter::new(),
            expired: Counter::new(),
            failed: Counter::new(),
            rejected_queue_full: Counter::new(),
            rejected_draining: Counter::new(),
            rejected_deadline: Counter::new(),
            rejected_unknown: Counter::new(),
            rejected_lint: Counter::new(),
            queue_wait_host_ns: Histogram::new(),
            service_host_ns: Histogram::new(),
        }
    }

    fn snapshot(&self) -> TenantMetricsSnapshot {
        TenantMetricsSnapshot {
            name: self.name.clone(),
            weight: self.weight,
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            expired: self.expired.get(),
            failed: self.failed.get(),
            rejected_queue_full: self.rejected_queue_full.get(),
            rejected_draining: self.rejected_draining.get(),
            rejected_deadline: self.rejected_deadline.get(),
            rejected_unknown: self.rejected_unknown.get(),
            rejected_lint: self.rejected_lint.get(),
            queue_wait_host_ns: self.queue_wait_host_ns.snapshot(),
            service_host_ns: self.service_host_ns.snapshot(),
        }
    }
}

/// The service's live metrics block: queue-depth and in-flight gauges,
/// per-tenant admission/outcome counters, queue-wait / service-time /
/// end-to-end host-latency histograms.
#[derive(Debug)]
pub struct ServiceMetrics {
    tenants: Vec<TenantMetrics>,
    /// Jobs currently admitted but not yet dispatched.
    pub queue_depth: Gauge,
    /// Jobs currently running on pool clusters.
    pub jobs_in_flight: Gauge,
    /// Host nanoseconds from admission to completion (all tenants).
    pub e2e_host_ns: Histogram,
    start: Instant,
}

impl ServiceMetrics {
    /// A fresh block for the given tenant table (allocates everything
    /// up front; nothing on the record path allocates afterwards).
    pub fn new(tenants: &[(String, u64)]) -> Self {
        ServiceMetrics {
            tenants: tenants
                .iter()
                .map(|(n, w)| TenantMetrics::new(n.clone(), *w))
                .collect(),
            queue_depth: Gauge::new(),
            jobs_in_flight: Gauge::new(),
            e2e_host_ns: Histogram::new(),
            start: Instant::now(),
        }
    }

    pub(crate) fn tenant(&self, i: usize) -> &TenantMetrics {
        &self.tenants[i]
    }

    /// A point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> ServiceMetricsSnapshot {
        ServiceMetricsSnapshot {
            tenants: self.tenants.iter().map(TenantMetrics::snapshot).collect(),
            queue_depth: self.queue_depth.get(),
            jobs_in_flight: self.jobs_in_flight.get(),
            e2e_host_ns: self.e2e_host_ns.snapshot(),
            uptime_host_ns: self.start.elapsed().as_nanos() as u64,
        }
    }
}

/// An owned copy of one tenant's counters and histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMetricsSnapshot {
    /// Tenant name (the `tenant` label in exports).
    pub name: String,
    /// Configured fair-share weight.
    pub weight: u64,
    /// Jobs admitted to the queue.
    pub admitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs whose deadline expired while queued (failed fast).
    pub expired: u64,
    /// Jobs that failed (panicked) on a cluster.
    pub failed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected_queue_full: u64,
    /// Submissions rejected because the service was draining.
    pub rejected_draining: u64,
    /// Submissions rejected because the deadline was unmeetable.
    pub rejected_deadline: u64,
    /// Submissions rejected for an unknown registered-closure name.
    pub rejected_unknown: u64,
    /// Submissions rejected because the static analyzer denied the
    /// program (`deny_races` admission policy).
    pub rejected_lint: u64,
    /// Host nanoseconds from admission to dispatch.
    pub queue_wait_host_ns: HistogramSnapshot,
    /// Host nanoseconds a job spent running on its cluster.
    pub service_host_ns: HistogramSnapshot,
}

impl TenantMetricsSnapshot {
    /// Total rejected submissions, all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_queue_full
            + self.rejected_draining
            + self.rejected_deadline
            + self.rejected_unknown
            + self.rejected_lint
    }
}

/// A point-in-time copy of a [`ServiceMetrics`] block, exportable as
/// Prometheus text or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceMetricsSnapshot {
    /// Per-tenant counters and histograms.
    pub tenants: Vec<TenantMetricsSnapshot>,
    /// Jobs admitted but not yet dispatched at snapshot time.
    pub queue_depth: i64,
    /// Jobs running on pool clusters at snapshot time.
    pub jobs_in_flight: i64,
    /// Admission-to-completion host latency, all tenants.
    pub e2e_host_ns: HistogramSnapshot,
    /// Host nanoseconds since the service was built.
    pub uptime_host_ns: u64,
}

impl ServiceMetricsSnapshot {
    /// Total admitted jobs, all tenants.
    pub fn admitted(&self) -> u64 {
        self.tenants.iter().map(|t| t.admitted).sum()
    }

    /// Total completed jobs, all tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Total deadline-expired jobs, all tenants.
    pub fn expired(&self) -> u64 {
        self.tenants.iter().map(|t| t.expired).sum()
    }

    /// Total failed (panicked) jobs, all tenants.
    pub fn failed(&self) -> u64 {
        self.tenants.iter().map(|t| t.failed).sum()
    }

    /// Total rejected submissions, all tenants and reasons.
    pub fn rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.rejected()).sum()
    }

    /// All tenants' service-time histograms merged into one.
    pub fn service_host_merged(&self) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for t in &self.tenants {
            h.merge(&t.service_host_ns);
        }
        h
    }

    /// All tenants' queue-wait histograms merged into one.
    pub fn queue_wait_merged(&self) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for t in &self.tenants {
            h.merge(&t.queue_wait_host_ns);
        }
        h
    }

    /// Render as Prometheus text exposition format (accepted by
    /// `now_metrics::validate_prometheus_text`).
    pub fn to_prometheus(&self) -> String {
        let mut p = PromText::new();
        p.family(
            "now_service_uptime_host_seconds",
            "Host seconds since the service was built.",
            "gauge",
        );
        p.sample_f64(
            "now_service_uptime_host_seconds",
            &[],
            self.uptime_host_ns as f64 / 1e9,
        );
        p.family(
            "now_service_queue_depth",
            "Jobs admitted but not yet dispatched.",
            "gauge",
        );
        p.sample_f64("now_service_queue_depth", &[], self.queue_depth as f64);
        p.family(
            "now_service_jobs_in_flight",
            "Jobs currently running on pool clusters.",
            "gauge",
        );
        p.sample_f64(
            "now_service_jobs_in_flight",
            &[],
            self.jobs_in_flight as f64,
        );
        p.family(
            "now_service_jobs_total",
            "Jobs by tenant and lifecycle event.",
            "counter",
        );
        for t in &self.tenants {
            for (event, v) in [
                ("admitted", t.admitted),
                ("completed", t.completed),
                ("expired", t.expired),
                ("failed", t.failed),
            ] {
                p.sample(
                    "now_service_jobs_total",
                    &[("tenant", &t.name), ("event", event)],
                    v,
                );
            }
        }
        p.family(
            "now_service_rejected_total",
            "Rejected submissions by tenant and reason.",
            "counter",
        );
        for t in &self.tenants {
            for (reason, v) in [
                ("queue_full", t.rejected_queue_full),
                ("draining", t.rejected_draining),
                ("deadline_unmeetable", t.rejected_deadline),
                ("unknown_program", t.rejected_unknown),
                ("lint", t.rejected_lint),
            ] {
                p.sample(
                    "now_service_rejected_total",
                    &[("tenant", &t.name), ("reason", reason)],
                    v,
                );
            }
        }
        p.family(
            "now_service_queue_wait_host_ns",
            "Host nanoseconds from admission to dispatch.",
            "histogram",
        );
        for t in &self.tenants {
            p.histogram(
                "now_service_queue_wait_host_ns",
                &[("tenant", &t.name)],
                &t.queue_wait_host_ns,
            );
        }
        p.family(
            "now_service_time_host_ns",
            "Host nanoseconds a job spent running on its cluster.",
            "histogram",
        );
        for t in &self.tenants {
            p.histogram(
                "now_service_time_host_ns",
                &[("tenant", &t.name)],
                &t.service_host_ns,
            );
        }
        p.family(
            "now_service_e2e_host_ns",
            "Host nanoseconds from admission to completion.",
            "histogram",
        );
        p.histogram("now_service_e2e_host_ns", &[], &self.e2e_host_ns);
        p.finish()
    }

    /// Render as a JSON document (accepted by
    /// `now_metrics::validate_json`). Histograms are summarized as
    /// count / sum / mean / p50 / p99 rather than raw buckets.
    pub fn to_json(&self) -> String {
        fn hist(out: &mut String, h: &HistogramSnapshot) {
            out.push_str(&format!(
                "{{\"count\":{},\"sum\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
                h.count(),
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.99)
            ));
        }
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"now-service-metrics-v1\",\n");
        out.push_str(&format!("  \"uptime_host_ns\": {},\n", self.uptime_host_ns));
        out.push_str(&format!("  \"queue_depth\": {},\n", self.queue_depth));
        out.push_str(&format!("  \"jobs_in_flight\": {},\n", self.jobs_in_flight));
        out.push_str("  \"e2e_host_ns\": ");
        hist(&mut out, &self.e2e_host_ns);
        out.push_str(",\n  \"tenants\": [");
        for (i, t) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"name\":\"{}\",", escape(&t.name)));
            out.push_str(&format!("\"weight\":{},", t.weight));
            out.push_str(&format!("\"admitted\":{},", t.admitted));
            out.push_str(&format!("\"completed\":{},", t.completed));
            out.push_str(&format!("\"expired\":{},", t.expired));
            out.push_str(&format!("\"failed\":{},", t.failed));
            out.push_str(&format!(
                "\"rejected\":{{\"queue_full\":{},\"draining\":{},\
                 \"deadline_unmeetable\":{},\"unknown_program\":{},\"lint\":{}}},",
                t.rejected_queue_full,
                t.rejected_draining,
                t.rejected_deadline,
                t.rejected_unknown,
                t.rejected_lint
            ));
            out.push_str("\"queue_wait_host_ns\":");
            hist(&mut out, &t.queue_wait_host_ns);
            out.push_str(",\"service_host_ns\":");
            hist(&mut out, &t.service_host_ns);
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use now_metrics::{validate_json, validate_prometheus_text};

    #[test]
    fn exports_validate() {
        let m = ServiceMetrics::new(&[("alice".into(), 2), ("bob \"q\"".into(), 1)]);
        m.tenant(0).admitted.add(5);
        m.tenant(0).completed.add(4);
        m.tenant(0).queue_wait_host_ns.record(1_500);
        m.tenant(0).service_host_ns.record(80_000);
        m.tenant(1).rejected_queue_full.inc();
        m.queue_depth.set(1);
        m.jobs_in_flight.inc();
        m.e2e_host_ns.record(95_000);
        let s = m.snapshot();
        validate_prometheus_text(&s.to_prometheus()).expect("prometheus export validates");
        validate_json(&s.to_json()).expect("json export validates");
        assert_eq!(s.admitted(), 5);
        assert_eq!(s.completed(), 4);
        assert_eq!(s.rejected(), 1);
        assert_eq!(s.service_host_merged().count(), 1);
        assert_eq!(s.queue_wait_merged().count(), 1);
    }
}
