//! # now-service — the cluster-pool job service
//!
//! Turns the warm [`Cluster`](nomp::Cluster) session (one caller, one
//! cluster, one job at a time) into a long-running *service* that runs
//! many concurrent job streams at once: a [`Service`] owns a pool of
//! warm clusters — all built from one validated [`ServiceConfig`] —
//! behind an asynchronous front door.
//!
//! * **Front door** — [`ServiceHandle::submit`] enqueues a
//!   [`JobRequest`] (a Rust closure over `Env`, a compiled `.omp`
//!   program, or a registered named workload) and returns a [`Ticket`]
//!   immediately; the job's [`ServiceReport`] (carrying the usual
//!   [`RunReport`](nomp::RunReport)) arrives on the ticket when a pool
//!   cluster finishes it. A small line-delimited-JSON TCP endpoint
//!   ([`TcpFront`]) exposes the same `submit`/`status`/`drain` verbs to
//!   external clients.
//! * **Admission control** — the dispatch queue is bounded; oversubmission
//!   comes back as typed [`Rejected`] backpressure (`QueueFull`,
//!   `Draining`, `DeadlineUnmeetable`) instead of unbounded buffering.
//! * **Fair share** — jobs are queued per tenant and dispatched by
//!   deficit round-robin weighted by the tenant's configured share, so a
//!   flood from one tenant cannot starve another. Within a tenant,
//!   higher-priority jobs run first.
//! * **Deadlines** — a job whose host-time deadline expires while it
//!   waits fails fast with a diagnostic outcome instead of occupying a
//!   cluster; hopeless deadlines are rejected at admission.
//! * **Graceful drain** — [`Service::drain`] stops admitting, finishes
//!   every admitted job, joins every pool thread and shuts every cluster
//!   down. A drained-then-restarted pool serves bit-identical results
//!   (the warm-vs-cold invariant of the session API extends to the
//!   service).
//!
//! Everything is instrumented with `now-metrics` primitives
//! ([`ServiceMetrics`]): queue-depth and in-flight gauges, per-tenant
//! admitted/completed/rejected/expired counters, queue-wait and
//! service-time histograms, with Prometheus and JSON export.
//!
//! ```
//! use now_service::{JobRequest, JobValue, ServiceConfig};
//! use nomp::{Cluster, Env};
//!
//! # fn main() -> Result<(), nomp::NowError> {
//! let service = ServiceConfig::new()
//!     .pool(2)
//!     .cluster(Cluster::builder().nodes(2).fast_test())
//!     .tenant("alice", 2)
//!     .tenant("bob", 1)
//!     .build()?;
//! let ticket = service
//!     .handle()
//!     .submit(
//!         JobRequest::closure(|omp: &mut Env| JobValue::Num(omp.num_threads() as f64))
//!             .tenant("alice"),
//!     )
//!     .expect("admitted");
//! let report = ticket.wait();
//! assert_eq!(report.outcome.unwrap().result, JobValue::Num(2.0));
//! service.drain();
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

mod config;
mod metrics;
mod service;
mod tcp;

pub use config::{ClosureFactory, ClosureJob, ServiceConfig};
pub use metrics::{ServiceMetrics, ServiceMetricsSnapshot, TenantMetricsSnapshot};
pub use service::{
    DrainSummary, JobError, JobRequest, JobValue, Rejected, Service, ServiceHandle, ServiceReport,
    ServiceStatus, TenantStatus, Ticket,
};
pub use tcp::TcpFront;
