//! `ServiceConfig` validation never panics: junk pool sizes, tenant
//! weights, queue bounds and deadlines must come back as a typed
//! [`NowError`], mirroring the `Cluster::builder` never-panics property
//! (`tests/cluster_api.rs` at the workspace root).

use nomp::{Cluster, NowError};
use now_service::ServiceConfig;
use proptest::prelude::*;

/// Every validation failure is a typed `InvalidService` whose message
/// names the offending field — spot-check the deterministic cases the
/// fuzz below can't pin messages for.
#[test]
fn every_config_validation_failure_is_typed() {
    let cases: Vec<(ServiceConfig, &str)> = vec![
        (ServiceConfig::new().pool(0), "pool"),
        (ServiceConfig::new().pool(10_000), "pool"),
        (ServiceConfig::new().queue_bound(0), "queue bound"),
        (ServiceConfig::new().queue_bound(1 << 30), "queue bound"),
        (ServiceConfig::new().tenant("", 1), "tenant"),
        (ServiceConfig::new().tenant("a", 0), "weight"),
        (ServiceConfig::new().tenant("a", u64::MAX), "weight"),
        (
            ServiceConfig::new().tenant("a", 1).tenant("a", 2),
            "duplicate",
        ),
        (ServiceConfig::new().default_deadline_ms(0.0), "deadline"),
        (ServiceConfig::new().default_deadline_ms(-5.0), "deadline"),
        (
            ServiceConfig::new().default_deadline_ms(f64::NAN),
            "deadline",
        ),
        (
            ServiceConfig::new().cluster(Cluster::builder().nodes(0)),
            "",
        ),
        // Pool x per-cluster threads capped: 64 clusters x 64 threads.
        (
            ServiceConfig::new()
                .pool(64)
                .cluster(Cluster::builder().nodes(16).threads_per_node(4)),
            "threads",
        ),
    ];
    for (cfg, needle) in cases {
        let err = cfg.validate().expect_err("config must be rejected");
        if let NowError::InvalidService(msg) = &err {
            assert!(
                msg.contains(needle),
                "diagnostic must name the field: wanted {needle:?} in {msg:?}"
            );
        } // Cluster-level failures surface as their own typed variants.
    }
}

// Validation is pure: arbitrary junk never panics, it returns Err or a
// config within the service's documented bounds.
proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]
    #[test]
    fn config_never_panics_on_arbitrary_inputs(
        pool in 0usize..100_000,
        queue in 0usize..(1usize << 24),
        nodes in 0usize..4_096,
        tpn in 0usize..512,
        name_picks in proptest::collection::vec(0usize..6, 0..6),
        weights in proptest::collection::vec(proptest::num::u64::ANY, 6),
        deadline in proptest::num::f64::ANY,
        with_deadline in 0usize..2,
    ) {
        // Duplicate and empty names are part of the junk space.
        const NAMES: [&str; 6] = ["", "a", "b", "alice", "a", "x y"];
        let mut cfg = ServiceConfig::new()
            .pool(pool)
            .queue_bound(queue)
            .cluster(Cluster::builder().nodes(nodes).threads_per_node(tpn).fast_test());
        let tenants: Vec<(&str, u64)> = name_picks
            .iter()
            .zip(&weights)
            .map(|(&p, &w)| (NAMES[p], w))
            .collect();
        for (name, weight) in &tenants {
            cfg = cfg.tenant(*name, *weight);
        }
        if with_deadline == 1 {
            cfg = cfg.default_deadline_ms(deadline);
        }
        let result = cfg.validate();
        if result.is_ok() {
            prop_assert!((1..=64).contains(&pool));
            prop_assert!(queue >= 1);
            prop_assert!(tenants.iter().all(|(n, w)| !n.is_empty() && *w >= 1));
        }
    }
}
