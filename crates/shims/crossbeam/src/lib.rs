//! Offline vendored subset of `crossbeam`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the one crossbeam API it uses: `crossbeam::channel` — an unbounded MPMC
//! channel with cloneable receivers, `try_recv`, and `recv_timeout`.
//! Semantics match crossbeam for the operations exercised here: senders
//! and receivers are reference-counted, and a receive on an empty channel
//! with no live senders reports disconnection.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// The receiving half of an unbounded channel (cloneable: clones share
    /// one queue, each message is delivered to exactly one receiver).
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnection.
                let _guard = self.0.queue.lock().unwrap();
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `msg`; fails only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.0.queue.lock().unwrap();
            q.push_back(msg);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.0.senders.load(Ordering::SeqCst) == 0
        }

        /// Blocking receive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap();
            }
        }

        /// Messages currently queued (diagnostics; racy by nature).
        pub fn len(&self) -> usize {
            self.0.queue.lock().unwrap().len()
        }

        /// Whether the queue is currently empty (racy by nature).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap();
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Receive, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self.0.ready.wait_timeout(q, deadline - now).unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.disconnected() {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn cloned_receiver_shares_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(1u32).unwrap();
        assert_eq!(rx2.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_detected() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u8>();
        let r = rx.recv_timeout(Duration::from_millis(5));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
