//! Offline vendored subset of `proptest`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the proptest surface its tests use: the `proptest!` macro, range and
//! `collection::vec` strategies, `num::*::ANY`, `ProptestConfig { cases }`
//! and the `prop_assert*` macros. Cases are generated from a deterministic
//! xorshift stream (override the seed with `PROPTEST_SEED`); there is no
//! shrinking — on failure the macro reports the case number and seed so
//! the exact inputs can be replayed.

use std::ops::Range;

/// Test-runner configuration (`cases` is the number of random cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic xorshift64* generator driving case generation.
pub struct TestRng(u64);

impl TestRng {
    /// Seeded from `PROPTEST_SEED` when set, else a fixed default.
    pub fn from_env() -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        TestRng(seed | 1)
    }

    /// Next raw u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform f64 in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The current seed (for failure reports).
    pub fn state(&self) -> u64 {
        self.0
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Produce one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => { $(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )* };
}
impl_int_range_strategy!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// Length specification for [`collection::vec`]: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange(r)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing a `Vec` of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a fixed length or a length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let r = &self.size.0;
            let len = if r.end - r.start <= 1 {
                r.start
            } else {
                r.start + (rng.next_u64() as usize) % (r.end - r.start)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Whole-domain strategies for numeric types (`proptest::num::i64::ANY`).
pub mod num {
    macro_rules! impl_any_mod {
        ($($m:ident / $t:ty),*) => { $(
            /// Strategies for this numeric type.
            pub mod $m {
                /// Strategy generating any value of the type.
                pub struct Any;
                /// Any value of the type.
                pub const ANY: Any = Any;
                impl crate::Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut crate::TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )* };
    }
    impl_any_mod!(
        u8 / u8,
        i8 / i8,
        u16 / u16,
        i16 / i16,
        u32 / u32,
        i32 / i32,
        u64 / u64,
        i64 / i64,
        usize / usize,
        isize / isize
    );

    /// Strategies for f64.
    pub mod f64 {
        /// Strategy generating finite f64 values across a wide range.
        pub struct Any;
        /// Any finite f64.
        pub const ANY: Any = Any;
        impl crate::Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut crate::TestRng) -> f64 {
                (rng.next_f64() - 0.5) * 2e12
            }
        }
    }
}

/// Assert a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `#[test] fn name(pat in strategy, ...)` runs
/// `cases` times over deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        #[test]
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_env();
                for case in 0..config.cases {
                    let seed = rng.state();
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = || { $body };
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                    if let Err(e) = result {
                        eprintln!(
                            "proptest case {case} failed (PROPTEST_SEED to replay from start; \
                             case rng state {seed:#x})"
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_env();
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-5i32..9), &mut rng);
            assert!((-5..9).contains(&w));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_fixed_and_ranged() {
        let mut rng = TestRng::from_env();
        let fixed = collection::vec(0u32..10, 7).generate(&mut rng);
        assert_eq!(fixed.len(), 7);
        for _ in 0..100 {
            let ranged = collection::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn macro_parses_and_runs(x in 0u64..100, mut v in collection::vec(0i32..5, 0..4)) {
            v.push(x as i32 % 5);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert_eq!(v.last().copied().unwrap(), (x % 5) as i32);
        }
    }

    proptest! {
        #[test]
        fn default_config_arm_works(a in num::i64::ANY) {
            prop_assert_eq!(a, a);
        }
    }
}
