//! Offline vendored subset of `parking_lot`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the parking_lot surface it uses: `Mutex` and `RwLock` with
//! non-poisoning, `Result`-free guards, implemented over the std
//! primitives. Poisoning is deliberately swallowed (parking_lot has no
//! poisoning): a panicking holder must not wedge the other simulated
//! nodes, which handle the panic through the system-level teardown path.

use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<StdMutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> StdReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> StdWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock is usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
