//! Offline vendored subset of `libc`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the one libc binding it uses: `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`
//! for per-thread CPU metering. Declarations match the Linux ABI on the
//! 64-bit targets this project builds for; std already links the system
//! libc, so the extern resolves without any build script.

#![allow(non_camel_case_types)]

/// Seconds component of a timespec.
pub type time_t = i64;
/// Nanoseconds component of a timespec.
pub type c_long = i64;
/// C `int`.
pub type c_int = i32;
/// POSIX clock identifier.
pub type clockid_t = c_int;

/// POSIX `struct timespec`.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default)]
pub struct timespec {
    /// Whole seconds.
    pub tv_sec: time_t,
    /// Nanoseconds (0..1e9).
    pub tv_nsec: c_long,
}

/// Clock id for the calling thread's CPU time (value is OS-specific).
#[cfg(target_os = "linux")]
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;
/// Clock id for the calling thread's CPU time (value is OS-specific).
#[cfg(target_os = "macos")]
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 16;
#[cfg(not(any(target_os = "linux", target_os = "macos")))]
compile_error!(
    "vendored libc shim: CLOCK_THREAD_CPUTIME_ID is only defined for Linux and macOS;      add this target's value before building"
);

extern "C" {
    /// POSIX `clock_gettime(2)`.
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_clock_works_and_advances() {
        let mut a = timespec::default();
        // SAFETY: `a` is a valid, writable timespec for the duration of
        // the call.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut a) };
        assert_eq!(rc, 0);
        let mut x = 0u64;
        for i in 0..3_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let mut b = timespec::default();
        // SAFETY: same as above — `b` is a valid, writable timespec.
        let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut b) };
        assert_eq!(rc, 0);
        let ns = |t: &timespec| t.tv_sec as u64 * 1_000_000_000 + t.tv_nsec as u64;
        assert!(ns(&b) > ns(&a));
    }
}
