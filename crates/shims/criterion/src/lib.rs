//! Offline vendored subset of `criterion`.
//!
//! The build environment has no registry access, so this workspace vendors
//! the criterion API surface its benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `criterion_group!`, `criterion_main!`, `black_box`). Timing is a simple
//! best-of-N wall-clock measurement printed per benchmark — enough to
//! compare host costs run to run, with none of criterion's statistics.

use std::time::Instant;

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to benchmark closures; drives the measured iterations.
pub struct Bencher {
    samples: usize,
    best_ns: u128,
    iters_done: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            best_ns: u128::MAX,
            iters_done: 0,
        }
    }

    /// Measure `routine` repeatedly, keeping the best sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(dt);
            self.iters_done += 1;
        }
    }

    /// Measure `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            let dt = t0.elapsed().as_nanos();
            self.best_ns = self.best_ns.min(dt);
            self.iters_done += 1;
        }
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters_done == 0 {
        println!("bench {name}: no samples");
    } else {
        println!(
            "bench {name}: best {} ns over {} samples",
            b.best_ns, b.iters_done
        );
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _c: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<S: Into<String>>(
        &mut self,
        id: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Parse CLI flags (accepted and ignored for compatibility).
    pub fn configure_from_args(mut self) -> Self {
        self.samples = 5;
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 5 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _c: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<S: Into<String>>(
        &mut self,
        id: S,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let samples = if self.samples == 0 { 5 } else { self.samples };
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&id, &b);
        self
    }

    /// Emit summaries (no-op; exists for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("square", |b| b.iter(|| black_box(21u64) * 2));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
