//! Always-on cluster metrics for the NOW runtime.
//!
//! This crate provides the storage and export layers of the metrics
//! subsystem; the domain-specific blocks (`NodeMetrics`,
//! `MetricsRegistry`) live in `tmk`, which owns the instrumented types.
//!
//! Design contract for everything here, matching the recording-path
//! invariants documented in DESIGN.md:
//!
//! - **Lock-free**: recording is a handful of relaxed atomic adds.
//!   There are no mutexes anywhere on the record path.
//! - **No allocation**: counters, gauges and histograms are fixed-size
//!   blocks allocated once at registry construction.
//! - **No clock interaction**: nothing in this crate reads or advances
//!   the simulation's virtual clocks. Callers may feed in durations
//!   they measured themselves; recording them is pure arithmetic.
//! - **Mergeable**: snapshots merge associatively so per-node blocks
//!   can be folded into cluster totals in any order.
//!
//! Relaxed atomics mean a snapshot taken concurrently with recording is
//! *per-cell* consistent (each counter is some value that was current
//! during the snapshot, and never decreases between snapshots) but not
//! a cross-cell linearizable cut — e.g. a histogram's derived count and
//! its sum may disagree by in-flight records. That is the standard
//! metrics trade-off and is documented at the `Cluster::metrics()`
//! surface.

#![warn(missing_docs)]

pub mod json;
mod net;
mod prim;
mod prom;

pub use net::{KindTraffic, NetMetrics, NetMetricsSnapshot};
pub use prim::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use prom::{validate_prometheus_text, PromText};

/// Validate that `s` is well-formed JSON (objects, arrays, strings,
/// numbers, booleans, null — the subset every emitter in this workspace
/// produces). Mirrors `validate_chrome_json` in spirit: a hand-rolled
/// checker so CI can gate emitted artifacts without external crates.
pub fn validate_json(s: &str) -> Result<(), String> {
    json::parse(s).map(|_| ())
}
