//! Lifetime network traffic metrics.
//!
//! `now-net` already keeps per-job `NetStats`, but those are reset at
//! every warm-cluster job boundary. `NetMetrics` is the cluster-lifetime
//! view: per-node send/recv message and byte counters plus per-kind
//! slots indexed by the wire type's `kind_id` (with a catch-all slot
//! for kinds outside the declared table). Recording is four relaxed
//! atomic adds; the slot vectors are allocated once at construction.

use crate::prim::Counter;

struct Traffic {
    msgs: Counter,
    bytes: Counter,
}

impl Traffic {
    fn new() -> Self {
        Traffic {
            msgs: Counter::new(),
            bytes: Counter::new(),
        }
    }

    fn record(&self, bytes: u64) {
        self.msgs.inc();
        self.bytes.add(bytes);
    }
}

/// Cluster-lifetime traffic counters (never reset at job boundaries).
///
/// Only *remote* traffic is recorded, matching `NetStats`: loopback
/// sends model no wire crossing. The reset/sync control round between
/// warm jobs *is* counted here (it crosses the simulated wire), which
/// is one deliberate way the lifetime view is richer than the sum of
/// per-job deltas.
pub struct NetMetrics {
    kinds: &'static [&'static str],
    node_send: Vec<Traffic>,
    node_recv: Vec<Traffic>,
    // kinds.len() + 1 entries; the last is the catch-all for kind ids
    // outside the table (`Wire::kind_id`'s default).
    kind_send: Vec<Traffic>,
    kind_recv: Vec<Traffic>,
}

impl std::fmt::Debug for NetMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetMetrics")
            .field("nodes", &self.node_send.len())
            .field("kinds", &self.kinds.len())
            .finish()
    }
}

impl NetMetrics {
    /// Counters for `nodes` nodes and the wire type's declared `kinds`
    /// table (pass `Wire::kinds()`).
    pub fn new(nodes: usize, kinds: &'static [&'static str]) -> Self {
        NetMetrics {
            kinds,
            node_send: (0..nodes).map(|_| Traffic::new()).collect(),
            node_recv: (0..nodes).map(|_| Traffic::new()).collect(),
            kind_send: (0..=kinds.len()).map(|_| Traffic::new()).collect(),
            kind_recv: (0..=kinds.len()).map(|_| Traffic::new()).collect(),
        }
    }

    #[inline]
    fn slot(&self, kind_id: usize) -> usize {
        if kind_id < self.kinds.len() {
            kind_id
        } else {
            self.kinds.len()
        }
    }

    /// Record a remote send from `node` of `bytes` wire bytes.
    #[inline]
    pub fn record_send(&self, node: usize, kind_id: usize, bytes: u64) {
        self.node_send[node].record(bytes);
        self.kind_send[self.slot(kind_id)].record(bytes);
    }

    /// Record a remote receive at `node` of `bytes` wire bytes.
    #[inline]
    pub fn record_recv(&self, node: usize, kind_id: usize, bytes: u64) {
        self.node_recv[node].record(bytes);
        self.kind_recv[self.slot(kind_id)].record(bytes);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> NetMetricsSnapshot {
        let per_node = |v: &[Traffic]| v.iter().map(|t| (t.msgs.get(), t.bytes.get())).collect();
        let mut per_kind: Vec<KindTraffic> = Vec::with_capacity(self.kinds.len() + 1);
        for (i, kind) in self
            .kinds
            .iter()
            .copied()
            .chain(std::iter::once("_other"))
            .enumerate()
        {
            per_kind.push(KindTraffic {
                kind,
                send_msgs: self.kind_send[i].msgs.get(),
                send_bytes: self.kind_send[i].bytes.get(),
                recv_msgs: self.kind_recv[i].msgs.get(),
                recv_bytes: self.kind_recv[i].bytes.get(),
            });
        }
        NetMetricsSnapshot {
            send: per_node(&self.node_send),
            recv: per_node(&self.node_recv),
            per_kind,
        }
    }
}

/// Lifetime traffic of one message kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindTraffic {
    /// The wire kind string (or `"_other"` for the catch-all slot).
    pub kind: &'static str,
    /// Remote messages sent.
    pub send_msgs: u64,
    /// Wire bytes sent.
    pub send_bytes: u64,
    /// Remote messages received.
    pub recv_msgs: u64,
    /// Wire bytes received.
    pub recv_bytes: u64,
}

/// Owned copy of a [`NetMetrics`] block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetMetricsSnapshot {
    /// Per-node `(msgs, bytes)` sent to remote peers.
    pub send: Vec<(u64, u64)>,
    /// Per-node `(msgs, bytes)` received from remote peers.
    pub recv: Vec<(u64, u64)>,
    /// Per-kind traffic; the final entry is the `_other` catch-all.
    pub per_kind: Vec<KindTraffic>,
}

impl NetMetricsSnapshot {
    /// Total remote messages sent across all nodes.
    pub fn total_send_msgs(&self) -> u64 {
        self.send.iter().map(|(m, _)| m).sum()
    }

    /// Total wire bytes sent across all nodes.
    pub fn total_send_bytes(&self) -> u64 {
        self.send.iter().map(|(_, b)| b).sum()
    }

    /// Total remote messages received across all nodes.
    pub fn total_recv_msgs(&self) -> u64 {
        self.recv.iter().map(|(m, _)| m).sum()
    }

    /// Total wire bytes received across all nodes.
    pub fn total_recv_bytes(&self) -> u64 {
        self.recv.iter().map(|(_, b)| b).sum()
    }

    /// Traffic for one kind string, if present in the table.
    pub fn kind(&self, kind: &str) -> Option<&KindTraffic> {
        self.per_kind.iter().find(|k| k.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: &[&str] = &["ping", "pong"];

    #[test]
    fn per_node_and_per_kind_accumulate() {
        let m = NetMetrics::new(2, KINDS);
        m.record_send(0, 0, 100);
        m.record_send(0, 1, 10);
        m.record_recv(1, 0, 100);
        m.record_send(1, usize::MAX, 7); // unknown kind -> catch-all
        let s = m.snapshot();
        assert_eq!(s.send, vec![(2, 110), (1, 7)]);
        assert_eq!(s.recv, vec![(0, 0), (1, 100)]);
        assert_eq!(s.total_send_msgs(), 3);
        assert_eq!(s.total_send_bytes(), 117);
        assert_eq!(s.kind("ping").unwrap().send_msgs, 1);
        assert_eq!(s.kind("ping").unwrap().recv_msgs, 1);
        assert_eq!(s.kind("pong").unwrap().send_bytes, 10);
        assert_eq!(s.kind("_other").unwrap().send_bytes, 7);
    }
}
