//! A minimal JSON value type, parser and string escaper.
//!
//! Shared by the metrics JSON validator and the bench regression gate
//! (which diffs `BENCH_*.json` files). Hand-rolled because the
//! workspace is dependency-free by policy; the subset implemented is
//! exactly what this workspace's emitters produce.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `u64` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing content at byte {}", p.i));
    }
    Ok(v)
}

/// Escape `s` for embedding inside a JSON string literal (no quotes
/// added). Escapes backslash, double quote and control characters.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            fields.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.i,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates are rejected rather than paired;
                            // no emitter here produces them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad code point \\u{hex}"))?,
                            );
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.i += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte {c:#x} in string"));
                }
                Some(_) => {
                    // Advance one full UTF-8 code point.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "invalid UTF-8".to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"rows":[{"k":"pi","vt_ns":12345,"ok":true,"x":null}],"f":-1.5e2}"#)
            .expect("valid");
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("k").unwrap().as_str(), Some("pi"));
        assert_eq!(rows[0].get("vt_ns").unwrap().as_u64(), Some(12345));
        assert_eq!(v.get("f"), Some(&Json::Num(-150.0)));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\":}", "tru", "\"abc", "{} x", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap(), Json::Str(s.to_string()));
    }
}
