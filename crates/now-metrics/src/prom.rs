//! Prometheus text exposition format: a small writer and a validator.
//!
//! The validator mirrors `validate_chrome_json` in now-trace: a
//! hand-rolled structural checker so CI can gate emitted artifacts
//! without pulling in a Prometheus client crate. It checks the
//! format-level rules that actually catch emitter bugs: metric/label
//! name grammar, `# TYPE`/`# HELP` placement, duplicate series, and —
//! for histogram families — `le` monotonicity, cumulative bucket
//! counts, a `+Inf` bucket, and `_count` == the `+Inf` bucket.

use std::collections::{BTreeMap, BTreeSet};

use crate::prim::HistogramSnapshot;
use crate::Histogram;

/// Incremental writer for the Prometheus text exposition format.
///
/// Families are declared once (`# HELP` + `# TYPE`), then any number of
/// samples follow. The writer escapes label values and renders
/// histogram snapshots with cumulative buckets, `+Inf`, `_sum` and
/// `_count` per the format.
#[derive(Debug, Default)]
pub struct PromText {
    out: String,
}

impl PromText {
    /// An empty exposition document.
    pub fn new() -> Self {
        PromText { out: String::new() }
    }

    /// Declare a metric family: one `# HELP` and one `# TYPE` line.
    pub fn family(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push('\n');
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Emit one sample line with an integer value.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.sample_str(name, labels, &value.to_string());
    }

    /// Emit one sample line with a float value.
    pub fn sample_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.sample_str(name, labels, &format!("{value}"));
    }

    fn sample_str(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(k);
                self.out.push_str("=\"");
                for c in v.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Emit the `_bucket`/`_sum`/`_count` samples of one histogram
    /// series. The family must have been declared with type
    /// `histogram`; `labels` are the series labels (without `le`).
    /// Empty buckets are skipped except the mandatory `+Inf`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], h: &HistogramSnapshot) {
        let bucket = format!("{name}_bucket");
        let mut cum = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            cum = cum.wrapping_add(n);
            if n == 0 {
                continue;
            }
            if let Some(le) = Histogram::bucket_le(i) {
                let le = le.to_string();
                let mut with_le: Vec<(&str, &str)> = labels.to_vec();
                with_le.push(("le", &le));
                self.sample(&bucket, &with_le, cum);
            }
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        self.sample(&bucket, &with_le, cum);
        self.sample(&format!("{name}_sum"), labels, h.sum);
        self.sample(&format!("{name}_count"), labels, cum);
    }

    /// Finish the document. Ends with a newline as the format requires.
    pub fn finish(self) -> String {
        self.out
    }
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    /// Label pairs in source order (kept sorted for series identity).
    labels: Vec<(String, String)>,
    value: f64,
    line: usize,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |m: &str| format!("line {lineno}: {m}: {line:?}");
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return Err(err("sample has no value")),
    };
    if !valid_metric_name(name_part) {
        return Err(err("invalid metric name"));
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .rfind('}')
            .ok_or_else(|| err("unterminated label set"))?;
        let (inner, tail) = (&body[..close], &body[close + 1..]);
        let mut s = inner;
        while !s.is_empty() {
            let eq = s.find('=').ok_or_else(|| err("label without '='"))?;
            let lname = &s[..eq];
            if !valid_label_name(lname) {
                return Err(err("invalid label name"));
            }
            s = &s[eq + 1..];
            if !s.starts_with('"') {
                return Err(err("label value must be quoted"));
            }
            s = &s[1..];
            let mut val = String::new();
            let mut bytes = s.char_indices();
            let mut end = None;
            while let Some((i, c)) = bytes.next() {
                match c {
                    '\\' => match bytes.next() {
                        Some((_, '\\')) => val.push('\\'),
                        Some((_, '"')) => val.push('"'),
                        Some((_, 'n')) => val.push('\n'),
                        _ => return Err(err("bad escape in label value")),
                    },
                    '"' => {
                        end = Some(i);
                        break;
                    }
                    c => val.push(c),
                }
            }
            let end = end.ok_or_else(|| err("unterminated label value"))?;
            labels.push((lname.to_string(), val));
            s = &s[end + 1..];
            if let Some(r) = s.strip_prefix(',') {
                s = r;
            } else if !s.is_empty() {
                return Err(err("expected ',' between labels"));
            }
        }
        tail
    } else {
        rest
    };
    let value_txt = rest.trim();
    if value_txt.is_empty() || value_txt.contains(' ') {
        // A second token would be a timestamp; our emitters never write
        // one, so treat it as malformed rather than silently accept.
        return Err(err("expected exactly one value token"));
    }
    let value = match value_txt {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        t => t.parse::<f64>().map_err(|_| err("invalid sample value"))?,
    };
    labels.sort();
    Ok(Sample {
        name: name_part.to_string(),
        labels,
        value,
        line: lineno,
    })
}

/// Validate a Prometheus text exposition document.
///
/// Checks: trailing newline; comment-line grammar (`# HELP`, `# TYPE`
/// with a known type, at most one each per family, `# TYPE` before any
/// sample of that family); metric/label name grammar; no duplicate
/// series; histogram families have only `_bucket`/`_sum`/`_count`
/// samples, every `_bucket` carries `le`, buckets are cumulative with
/// ascending `le`, end in `le="+Inf"`, and `_count` equals the `+Inf`
/// bucket.
pub fn validate_prometheus_text(s: &str) -> Result<(), String> {
    if s.is_empty() {
        return Err("empty document".into());
    }
    if !s.ends_with('\n') {
        return Err("document must end with a newline".into());
    }

    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<Sample> = Vec::new();

    for (i, line) in s.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: TYPE for invalid name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                }
                // TYPE must precede every sample of its family.
                let is_fam = |n: &str| {
                    n == name
                        || (types[name] == "histogram"
                            && [
                                format!("{name}_bucket"),
                                format!("{name}_sum"),
                                format!("{name}_count"),
                            ]
                            .iter()
                            .any(|f| f == n))
                };
                if samples.iter().any(|smp| is_fam(&smp.name)) {
                    return Err(format!("line {lineno}: TYPE for {name} after its samples"));
                }
            } else if let Some(rest) = comment.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: HELP for invalid name {name:?}"));
                }
                if !helps.insert(name.to_string()) {
                    return Err(format!("line {lineno}: duplicate HELP for {name}"));
                }
            }
            // Other comments are allowed and ignored.
            continue;
        }
        let smp = parse_sample(line, lineno)?;
        let series_id = format!("{}|{:?}", smp.name, smp.labels);
        if !seen_series.insert(series_id) {
            return Err(format!(
                "line {lineno}: duplicate series {}{:?}",
                smp.name, smp.labels
            ));
        }
        samples.push(smp);
    }

    // Histogram family structure.
    for (fam, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{fam}_bucket");
        let sum_name = format!("{fam}_sum");
        let count_name = format!("{fam}_count");
        // series key (labels minus le) -> [(le, cumulative count, line)]
        let mut series: BTreeMap<String, Vec<(f64, f64, usize)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for smp in &samples {
            if smp.name == *fam {
                return Err(format!(
                    "line {}: histogram family {fam} has a bare sample; only \
                     _bucket/_sum/_count are allowed",
                    smp.line
                ));
            }
            if smp.name == bucket_name {
                let le = smp
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("line {}: _bucket without le label", smp.line))?;
                let le_v = match le.1.as_str() {
                    "+Inf" => f64::INFINITY,
                    t => t
                        .parse::<f64>()
                        .map_err(|_| format!("line {}: bad le value {t:?}", smp.line))?,
                };
                let key: Vec<_> = smp.labels.iter().filter(|(k, _)| k != "le").collect();
                series
                    .entry(format!("{key:?}"))
                    .or_default()
                    .push((le_v, smp.value, smp.line));
            } else if smp.name == count_name {
                counts.insert(
                    format!("{:?}", smp.labels.iter().collect::<Vec<_>>()),
                    smp.value,
                );
            }
        }
        let _ = sum_name; // _sum needs no structural check beyond series parsing
        for (key, rows) in &series {
            let mut last_le = f64::NEG_INFINITY;
            let mut last_cum = -1.0;
            for (le, cum, line) in rows {
                if *le <= last_le {
                    return Err(format!("line {line}: {fam} le not strictly ascending"));
                }
                if *cum < last_cum {
                    return Err(format!("line {line}: {fam} bucket counts not cumulative"));
                }
                last_le = *le;
                last_cum = *cum;
            }
            let (inf_le, inf_cum, _) = rows.last().unwrap();
            if !inf_le.is_infinite() {
                return Err(format!(
                    "histogram {fam}{key} is missing an le=\"+Inf\" bucket"
                ));
            }
            if let Some(count) = counts.get(key) {
                if count != inf_cum {
                    return Err(format!(
                        "histogram {fam}{key}: _count {count} != +Inf bucket {inf_cum}"
                    ));
                }
            } else {
                return Err(format!("histogram {fam}{key} is missing _count"));
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn demo_doc() -> String {
        let h = Histogram::new();
        for v in [0, 1, 900, 4096] {
            h.record(v);
        }
        let mut p = PromText::new();
        p.family("now_jobs_total", "Jobs by final status.", "counter");
        p.sample("now_jobs_total", &[("status", "completed")], 3);
        p.sample("now_jobs_total", &[("status", "failed")], 0);
        p.family("now_jobs_in_flight", "Jobs currently running.", "gauge");
        p.sample("now_jobs_in_flight", &[], 0);
        p.family("now_op_vt_ns", "Virtual-time op latency.", "histogram");
        p.histogram("now_op_vt_ns", &[("op", "barrier")], &h.snapshot());
        p.finish()
    }

    #[test]
    fn writer_output_validates() {
        let doc = demo_doc();
        validate_prometheus_text(&doc).expect("writer emits valid exposition text");
        assert!(doc.contains("now_op_vt_ns_bucket{op=\"barrier\",le=\"+Inf\"} 4"));
        assert!(doc.contains("now_op_vt_ns_count{op=\"barrier\"} 4"));
    }

    #[test]
    fn rejects_structural_errors() {
        // No trailing newline.
        assert!(validate_prometheus_text("a 1").is_err());
        // Bad metric name.
        assert!(validate_prometheus_text("1bad 1\n").is_err());
        // Bad label name.
        assert!(validate_prometheus_text("a{1x=\"y\"} 1\n").is_err());
        // Duplicate series.
        assert!(validate_prometheus_text("a 1\na 2\n").is_err());
        // Unknown type.
        assert!(validate_prometheus_text("# TYPE a widget\n").is_err());
        // TYPE after samples of the family.
        assert!(validate_prometheus_text("a 1\n# TYPE a counter\n").is_err());
        // Duplicate TYPE.
        assert!(validate_prometheus_text("# TYPE a counter\n# TYPE a counter\n").is_err());
        // Missing value.
        assert!(validate_prometheus_text("a{x=\"y\"}\n").is_err());
    }

    #[test]
    fn rejects_histogram_violations() {
        // _bucket without le.
        let d = "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n";
        assert!(validate_prometheus_text(d).is_err());
        // Missing +Inf.
        let d = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 0\nh_count 1\n";
        assert!(validate_prometheus_text(d).is_err());
        // Non-cumulative buckets.
        let d = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n";
        assert!(validate_prometheus_text(d).is_err());
        // le not ascending.
        let d = "# TYPE h histogram\nh_bucket{le=\"3\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 2\n";
        assert!(validate_prometheus_text(d).is_err());
        // _count disagrees with +Inf bucket.
        let d = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 3\n";
        assert!(validate_prometheus_text(d).is_err());
        // Bare sample of a histogram family.
        let d = "# TYPE h histogram\nh 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 0\nh_count 1\n";
        assert!(validate_prometheus_text(d).is_err());
        // A correct one passes.
        let d = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n";
        validate_prometheus_text(d).expect("valid histogram accepted");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.family("m", "help", "counter");
        p.sample("m", &[("k", "a\"b\\c\nd")], 1);
        let doc = p.finish();
        validate_prometheus_text(&doc).expect("escaped labels parse back");
        assert!(doc.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1"));
    }
}
