//! Lock-free metric primitives: `Counter`, `Gauge`, `Histogram`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
///
/// All operations are relaxed atomics: recording never blocks, never
/// allocates, and imposes no ordering on surrounding code.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (e.g. jobs in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add `d` (which may be negative) to the gauge.
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: bucket 0 holds the value 0 and
/// bucket `k` (1..=64) holds values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram of `u64` observations.
///
/// The bucket layout covers the full `u64` range with no configuration:
/// bucket 0 is exactly the value 0, bucket `k` is `[2^(k-1), 2^k)`.
/// Recording is two relaxed `fetch_add`s — no allocation, no locks, no
/// floating point. The running sum wraps on overflow (by construction;
/// practically unreachable for nanosecond-scale observations).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    pub const fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `i`, or `None` for the last
    /// bucket (`+Inf` in Prometheus terms: it holds `[2^63, u64::MAX]`).
    pub const fn bucket_le(i: usize) -> Option<u64> {
        match i {
            0 => Some(0),
            1..=63 => Some((1u64 << i) - 1),
            _ => None,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`HISTOGRAM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
    /// Wrapping sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations (wrapping sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.wrapping_add(b))
    }

    /// Element-wise merge of `other` into `self`. Associative and
    /// commutative, so per-node snapshots fold into cluster totals in
    /// any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.wrapping_add(*b);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`q` clamped to `0.0..=1.0`): the
    /// inclusive upper bound of the bucket holding the ⌈q·n⌉-th smallest
    /// observation. With the log₂ layout the estimate is exact for 0,
    /// within 2× above it, and `u64::MAX` when the rank lands in the
    /// open-ended last bucket. Returns 0 on an empty histogram.
    ///
    /// This is what turns a lock-free latency histogram into the p50/p99
    /// columns of a bench table without recording individual samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.wrapping_add(c);
            if seen >= rank {
                return Histogram::bucket_le(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_boundaries_0_1_and_max() {
        // The issue's boundary cases: 0, 1, u64::MAX — plus every
        // power-of-two edge, where off-by-one bugs live.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for k in 1..64 {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(
                Histogram::bucket_index(lo),
                k as usize,
                "low edge 2^{}",
                k - 1
            );
            assert_eq!(Histogram::bucket_index(hi), k as usize, "high edge 2^{k}-1");
        }
        assert_eq!(Histogram::bucket_index(1u64 << 63), 64);
        // le bounds are the inclusive upper edges of those ranges.
        assert_eq!(Histogram::bucket_le(0), Some(0));
        assert_eq!(Histogram::bucket_le(1), Some(1));
        assert_eq!(Histogram::bucket_le(2), Some(3));
        assert_eq!(Histogram::bucket_le(63), Some((1u64 << 63) - 1));
        assert_eq!(Histogram::bucket_le(64), None);
    }

    #[test]
    fn histogram_record_and_snapshot() {
        let h = Histogram::new();
        for v in [0, 0, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1); // 1024 = 2^10 -> [2^10, 2^11)
        assert_eq!(s.buckets[64], 1);
        assert_eq!(
            s.sum,
            0u64.wrapping_add(1 + 2 + 3 + 1024).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn quantiles_walk_the_bucket_bounds() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram");
        // 90 observations of ~1µs, 10 of ~1ms: p50 stays in the small
        // bucket, p99 lands in the big one.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        assert!(
            (1_000..2_048).contains(&p50),
            "p50 {p50} should bound the 1µs bucket"
        );
        assert!(
            (1_000_000..2_097_152).contains(&p99),
            "p99 {p99} should bound the 1ms bucket"
        );
        // q clamping + extremes.
        assert_eq!(s.quantile(-1.0), s.quantile(0.0));
        assert_eq!(s.quantile(2.0), s.quantile(1.0));
        let top = Histogram::new();
        top.record(u64::MAX);
        assert_eq!(top.snapshot().quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let a = mk(&[0, 1, 7, 9000]);
        let b = mk(&[1, 1, u64::MAX]);
        let c = mk(&[0, 2, 2, 1 << 40]);

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);

        // a ⊕ b == b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        assert_eq!(ab_c.count(), 11);
    }
}
