//! # hetero — heterogeneous & loaded workstations
//!
//! The SC'98 paper measures OpenMP/TreadMarks on *dedicated, identical*
//! workstations. The defining property of a real network of workstations
//! is that nodes differ in speed and carry background load — exactly the
//! regime where static partitioning collapses and schedule choice becomes
//! the dominant effect. This crate is the pure model half of that axis:
//!
//! * **Per-node speed factors** ([`ClusterLoad::speeds`]): a node with
//!   speed `0.5` executes every CPU charge at half pace (a `2×`-slow
//!   machine). Speed `1.0` is the paper's nominal workstation.
//! * **Background-load traces** ([`LoadTrace`]): deterministic, seeded,
//!   time-varying slowdown generators — a step (a daemon starts and never
//!   stops), a phase (a periodic cron-style job), or seeded bursts (an
//!   interactive user). A trace is a pure function of
//!   `(seed, node, virtual time)`: the same seed reproduces bit-identical
//!   load curves, so simulations stay replayable.
//!
//! The crate is dependency-free and purely arithmetic; `now-net` samples
//! [`ClusterLoad::effective_speed`] on every virtual-clock charge, which
//! is what turns the model into per-node time dilation. Sampling is
//! point-in-time at the instant a charge begins (charges are the
//! fine-grained per-operation meter marks of the runtime, so a charge
//! spanning a load transition is sampled at its start).

#![warn(missing_docs)]

/// One node's time-varying background load: a multiplicative slowdown
/// `≥ 1.0` as a pure function of `(seed, node, virtual time)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadTrace {
    /// No background load (the paper's dedicated machine).
    Flat,
    /// A background job starts at `at_ns` and never stops: slowdown is
    /// `1.0` before and `slowdown` after.
    Step {
        /// Virtual instant the load appears.
        at_ns: u64,
        /// Multiplicative slowdown while loaded (`≥ 1.0`).
        slowdown: f64,
    },
    /// A periodic job: the first `busy_ns` of every `period_ns` window is
    /// loaded. Deterministic and unseeded (a cron job is not random).
    Phase {
        /// Square-wave period.
        period_ns: u64,
        /// Loaded prefix of each period (clamped to the period).
        busy_ns: u64,
        /// Multiplicative slowdown while loaded (`≥ 1.0`).
        slowdown: f64,
    },
    /// Seeded random bursts: every `period_ns` window contains one
    /// `busy_ns` burst at a pseudo-random offset derived from
    /// `(seed, node, window index)`. Same seed ⇒ identical burst
    /// placement; different nodes get independent streams.
    Burst {
        /// Window length containing exactly one burst.
        period_ns: u64,
        /// Burst length (clamped to the period).
        busy_ns: u64,
        /// Multiplicative slowdown while loaded (`≥ 1.0`).
        slowdown: f64,
    },
}

impl LoadTrace {
    /// The slowdown this trace imposes on `node` at virtual time `t_ns`
    /// under `seed`. Always `≥ 1.0` for well-formed traces.
    pub fn slowdown_at(&self, seed: u64, node: usize, t_ns: u64) -> f64 {
        match *self {
            LoadTrace::Flat => 1.0,
            LoadTrace::Step { at_ns, slowdown } => {
                if t_ns >= at_ns {
                    slowdown
                } else {
                    1.0
                }
            }
            LoadTrace::Phase {
                period_ns,
                busy_ns,
                slowdown,
            } => {
                let period = period_ns.max(1);
                if t_ns % period < busy_ns.min(period) {
                    slowdown
                } else {
                    1.0
                }
            }
            LoadTrace::Burst {
                period_ns,
                busy_ns,
                slowdown,
            } => {
                let period = period_ns.max(1);
                let busy = busy_ns.min(period);
                let window = t_ns / period;
                let slack = period - busy;
                let offset = if slack == 0 {
                    0
                } else {
                    splitmix64(seed ^ mix_node_window(node, window)) % (slack + 1)
                };
                let in_window = t_ns - window * period;
                if in_window >= offset && in_window < offset + busy {
                    slowdown
                } else {
                    1.0
                }
            }
        }
    }

    /// Whether this trace ever imposes load.
    pub fn is_flat(&self) -> bool {
        match *self {
            LoadTrace::Flat => true,
            LoadTrace::Step { slowdown, .. }
            | LoadTrace::Phase { slowdown, .. }
            | LoadTrace::Burst { slowdown, .. } => slowdown <= 1.0,
        }
    }
}

/// Hash a `(node, window)` pair into the seed stream (two rounds of
/// splitmix so adjacent windows decorrelate).
fn mix_node_window(node: usize, window: u64) -> u64 {
    splitmix64((node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ window)
}

/// SplitMix64: the standard 64-bit finalizer-style PRNG step. Pure, so
/// trace evaluation never carries state — determinism by construction.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The whole cluster's heterogeneity: per-node base speeds plus per-node
/// load traces under one seed. The default ([`ClusterLoad::uniform`]) is
/// the paper's platform — identical, unloaded machines — and is
/// guaranteed to leave every virtual-time charge bit-identical to a
/// simulation without the model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterLoad {
    /// Per-node relative speed (`1.0` = nominal, `0.5` = a 2×-slow
    /// machine). Nodes beyond the vector's length are nominal; an empty
    /// vector is a fully uniform cluster. All factors must be `> 0`.
    pub speeds: Vec<f64>,
    /// Per-node background-load traces. Nodes beyond the vector's length
    /// are unloaded.
    pub traces: Vec<LoadTrace>,
    /// Seed for the stochastic traces ([`LoadTrace::Burst`]). The same
    /// seed reproduces bit-identical load curves.
    pub seed: u64,
}

impl ClusterLoad {
    /// The paper's platform: identical, dedicated workstations.
    pub fn uniform() -> Self {
        ClusterLoad::default()
    }

    /// A cluster with the given per-node base speeds and no load traces.
    pub fn with_speeds(speeds: Vec<f64>) -> Self {
        ClusterLoad {
            speeds,
            ..ClusterLoad::default()
        }
    }

    /// One node slowed by `factor` (e.g. `2.0` = a 2×-slow machine),
    /// everyone else nominal.
    pub fn one_slow_node(nodes: usize, slow: usize, factor: f64) -> Self {
        assert!(
            slow < nodes,
            "slow node {slow} out of range (nodes {nodes})"
        );
        assert!(factor > 0.0, "slowdown factor must be positive");
        let mut speeds = vec![1.0; nodes];
        speeds[slow] = 1.0 / factor;
        ClusterLoad::with_speeds(speeds)
    }

    /// The same trace on every one of `nodes` nodes (burst offsets still
    /// differ per node through the seed stream).
    pub fn with_trace_all(nodes: usize, trace: LoadTrace, seed: u64) -> Self {
        ClusterLoad {
            speeds: Vec::new(),
            traces: vec![trace; nodes],
            seed,
        }
    }

    /// Whether this model is the identity (no scaling anywhere): the
    /// fast-path check that keeps uniform simulations bit-identical.
    pub fn is_uniform(&self) -> bool {
        self.speeds.iter().all(|&s| s == 1.0) && self.traces.iter().all(|t| t.is_flat())
    }

    /// `node`'s base speed factor.
    pub fn base_speed(&self, node: usize) -> f64 {
        self.speeds.get(node).copied().unwrap_or(1.0)
    }

    /// `node`'s effective speed at virtual time `t_ns`: base speed divided
    /// by the current trace slowdown. A CPU charge of `ns` nominal
    /// nanoseconds beginning at `t_ns` takes `ns / effective_speed`.
    pub fn effective_speed(&self, node: usize, t_ns: u64) -> f64 {
        let base = self.base_speed(node);
        debug_assert!(base > 0.0, "node {node} has non-positive speed {base}");
        match self.traces.get(node) {
            None => base,
            Some(tr) => base / tr.slowdown_at(self.seed, node, t_ns).max(1.0),
        }
    }

    /// Validate the model: every speed positive and finite, every trace
    /// slowdown `≥ 1.0` and finite. Returns a human-readable complaint.
    pub fn validate(&self) -> Result<(), String> {
        for (i, &s) in self.speeds.iter().enumerate() {
            if !(s.is_finite() && s > 0.0) {
                return Err(format!("node {i} speed {s} must be a positive number"));
            }
        }
        for (i, t) in self.traces.iter().enumerate() {
            let f = match *t {
                LoadTrace::Flat => continue,
                LoadTrace::Step { slowdown, .. }
                | LoadTrace::Phase { slowdown, .. }
                | LoadTrace::Burst { slowdown, .. } => slowdown,
            };
            if !(f.is_finite() && f >= 1.0) {
                return Err(format!("node {i} trace slowdown {f} must be ≥ 1.0"));
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// CLI spec parsing (shared by omp_runner-style tools)
// ----------------------------------------------------------------------

/// Parse a `--speeds` list: comma-separated positive factors, one per
/// node (`1.0,0.5,1.0,1.0`). Mirrors `Schedule::parse` error style:
/// malformed input yields a clear one-line message.
pub fn parse_speeds(s: &str) -> Result<Vec<f64>, String> {
    if s.trim().is_empty() {
        return Err("empty --speeds list (expected comma-separated factors, e.g. 1.0,0.5)".into());
    }
    s.split(',')
        .map(|tok| {
            let tok = tok.trim();
            let v: f64 = tok.parse().map_err(|_| {
                format!("invalid speed factor `{tok}` in `{s}` (expected a positive number)")
            })?;
            if !(v.is_finite() && v > 0.0) {
                return Err(format!(
                    "speed factor `{tok}` in `{s}` must be a positive number"
                ));
            }
            Ok(v)
        })
        .collect()
}

/// A parsed `--load` trace spec: what to apply, to whom.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadSpec {
    /// `none` — no background load.
    None,
    /// `step:<node>@<ms>x<factor>` — one node slows from an instant on.
    Step {
        /// Target node.
        node: usize,
        /// Onset in virtual nanoseconds.
        at_ns: u64,
        /// Slowdown factor.
        slowdown: f64,
    },
    /// `phase:<period_ms>/<busy_ms>x<factor>` or
    /// `burst:<period_ms>/<busy_ms>x<factor>` — every node.
    All(LoadTrace),
}

/// Parse `<ms>` (fractional milliseconds) into nanoseconds.
fn parse_ms(tok: &str, spec: &str) -> Result<u64, String> {
    let v: f64 = tok
        .trim()
        .parse()
        .map_err(|_| format!("invalid milliseconds `{tok}` in load spec `{spec}`"))?;
    if !(v.is_finite() && v >= 0.0) {
        return Err(format!(
            "milliseconds `{tok}` in load spec `{spec}` must be non-negative"
        ));
    }
    Ok((v * 1e6) as u64)
}

fn parse_factor(tok: &str, spec: &str) -> Result<f64, String> {
    let v: f64 = tok
        .trim()
        .parse()
        .map_err(|_| format!("invalid slowdown factor `{tok}` in load spec `{spec}`"))?;
    if !(v.is_finite() && v >= 1.0) {
        return Err(format!(
            "slowdown factor `{tok}` in load spec `{spec}` must be ≥ 1"
        ));
    }
    Ok(v)
}

impl LoadSpec {
    /// Parse a `--load` trace spec. Grammar (times in fractional
    /// milliseconds of virtual time):
    ///
    /// ```text
    /// none
    /// step:<node>@<ms>x<factor>        step:1@5x2       (node 1, 2x slow from 5 ms)
    /// phase:<period>/<busy>x<factor>   phase:20/5x3     (3x slow 5 of every 20 ms)
    /// burst:<period>/<busy>x<factor>   burst:40/10x3    (seeded burst placement)
    /// ```
    pub fn parse(spec: &str) -> Result<LoadSpec, String> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("none") || spec.eq_ignore_ascii_case("flat") {
            return Ok(LoadSpec::None);
        }
        let (kind, rest) = spec.split_once(':').ok_or_else(|| {
            format!(
                "invalid load spec `{spec}` (expected none | step:<node>@<ms>x<factor> | \
                 phase:<period>/<busy>x<factor> | burst:<period>/<busy>x<factor>)"
            )
        })?;
        let (body, factor) = rest
            .rsplit_once(['x', 'X'])
            .ok_or_else(|| format!("load spec `{spec}` is missing the `x<factor>` suffix"))?;
        let slowdown = parse_factor(factor, spec)?;
        match kind.trim().to_ascii_lowercase().as_str() {
            "step" => {
                let (node, at) = body.split_once('@').ok_or_else(|| {
                    format!("step load spec `{spec}` must be step:<node>@<ms>x<factor>")
                })?;
                let node: usize = node
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid node `{}` in load spec `{spec}`", node.trim()))?;
                Ok(LoadSpec::Step {
                    node,
                    at_ns: parse_ms(at, spec)?,
                    slowdown,
                })
            }
            k @ ("phase" | "burst") => {
                let (period, busy) = body.split_once('/').ok_or_else(|| {
                    format!("{k} load spec `{spec}` must be {k}:<period_ms>/<busy_ms>x<factor>")
                })?;
                let period_ns = parse_ms(period, spec)?;
                let busy_ns = parse_ms(busy, spec)?;
                if period_ns == 0 {
                    return Err(format!("load spec `{spec}` has a zero period"));
                }
                if busy_ns > period_ns {
                    return Err(format!(
                        "load spec `{spec}`: busy window exceeds the period"
                    ));
                }
                let trace = if k == "phase" {
                    LoadTrace::Phase {
                        period_ns,
                        busy_ns,
                        slowdown,
                    }
                } else {
                    LoadTrace::Burst {
                        period_ns,
                        busy_ns,
                        slowdown,
                    }
                };
                Ok(LoadSpec::All(trace))
            }
            other => Err(format!(
                "unknown load kind `{other}` in `{spec}` (expected none|step|phase|burst)"
            )),
        }
    }

    /// Expand the spec into per-node traces for a cluster of `nodes`
    /// workstations. Errors when a `step` targets a node out of range.
    pub fn into_traces(self, nodes: usize) -> Result<Vec<LoadTrace>, String> {
        match self {
            LoadSpec::None => Ok(Vec::new()),
            LoadSpec::Step {
                node,
                at_ns,
                slowdown,
            } => {
                if node >= nodes {
                    return Err(format!(
                        "load spec targets node {node}, but the cluster has {nodes} nodes"
                    ));
                }
                let mut traces = vec![LoadTrace::Flat; nodes];
                traces[node] = LoadTrace::Step { at_ns, slowdown };
                Ok(traces)
            }
            LoadSpec::All(trace) => Ok(vec![trace; nodes]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_identity() {
        let u = ClusterLoad::uniform();
        assert!(u.is_uniform());
        assert_eq!(u.effective_speed(0, 0), 1.0);
        assert_eq!(u.effective_speed(7, 123_456_789), 1.0);
        // Explicit 1.0 factors and flat traces are still uniform.
        let e = ClusterLoad {
            speeds: vec![1.0, 1.0],
            traces: vec![LoadTrace::Flat; 2],
            seed: 9,
        };
        assert!(e.is_uniform());
    }

    #[test]
    fn base_speeds_scale_nodes_independently() {
        let l = ClusterLoad::with_speeds(vec![1.0, 0.5]);
        assert!(!l.is_uniform());
        assert_eq!(l.effective_speed(0, 0), 1.0);
        assert_eq!(l.effective_speed(1, 0), 0.5);
        assert_eq!(l.effective_speed(2, 0), 1.0, "nodes beyond vec are nominal");
        let s = ClusterLoad::one_slow_node(4, 2, 2.0);
        assert_eq!(s.effective_speed(2, 5), 0.5);
        assert_eq!(s.effective_speed(0, 5), 1.0);
    }

    #[test]
    fn step_trace_switches_at_onset() {
        let t = LoadTrace::Step {
            at_ns: 1_000,
            slowdown: 2.0,
        };
        assert_eq!(t.slowdown_at(0, 0, 999), 1.0);
        assert_eq!(t.slowdown_at(0, 0, 1_000), 2.0);
        assert_eq!(t.slowdown_at(0, 0, u64::MAX), 2.0);
    }

    #[test]
    fn phase_trace_is_periodic() {
        let t = LoadTrace::Phase {
            period_ns: 100,
            busy_ns: 30,
            slowdown: 3.0,
        };
        for k in 0..5u64 {
            assert_eq!(t.slowdown_at(1, 0, k * 100), 3.0);
            assert_eq!(t.slowdown_at(1, 0, k * 100 + 29), 3.0);
            assert_eq!(t.slowdown_at(1, 0, k * 100 + 30), 1.0);
            assert_eq!(t.slowdown_at(1, 0, k * 100 + 99), 1.0);
        }
    }

    #[test]
    fn burst_trace_is_seed_deterministic_and_covers_busy_ns() {
        let t = LoadTrace::Burst {
            period_ns: 1_000,
            busy_ns: 250,
            slowdown: 2.0,
        };
        // Same seed ⇒ identical curve; different seed ⇒ different curve.
        let curve = |seed: u64, node: usize| -> Vec<f64> {
            (0..5_000)
                .map(|t_ns| t.slowdown_at(seed, node, t_ns))
                .collect()
        };
        assert_eq!(curve(42, 1), curve(42, 1));
        assert_ne!(curve(42, 1), curve(43, 1), "seed must matter");
        assert_ne!(curve(42, 1), curve(42, 2), "node streams must differ");
        // Every window is loaded for exactly busy_ns instants.
        for w in 0..5u64 {
            let loaded = (w * 1_000..(w + 1) * 1_000)
                .filter(|&t_ns| t.slowdown_at(42, 1, t_ns) > 1.0)
                .count();
            assert_eq!(loaded, 250, "window {w}");
        }
    }

    #[test]
    fn burst_with_zero_slack_fills_the_period() {
        let t = LoadTrace::Burst {
            period_ns: 100,
            busy_ns: 100,
            slowdown: 2.0,
        };
        assert!((0..300).all(|t_ns| t.slowdown_at(7, 0, t_ns) == 2.0));
    }

    #[test]
    fn effective_speed_combines_base_and_trace() {
        let l = ClusterLoad {
            speeds: vec![0.5],
            traces: vec![LoadTrace::Step {
                at_ns: 10,
                slowdown: 2.0,
            }],
            seed: 0,
        };
        assert_eq!(l.effective_speed(0, 0), 0.5);
        assert_eq!(l.effective_speed(0, 10), 0.25);
    }

    #[test]
    fn validate_rejects_bad_models() {
        assert!(ClusterLoad::with_speeds(vec![1.0, 0.0]).validate().is_err());
        assert!(ClusterLoad::with_speeds(vec![f64::NAN]).validate().is_err());
        let bad_trace = ClusterLoad {
            traces: vec![LoadTrace::Step {
                at_ns: 0,
                slowdown: 0.5,
            }],
            ..ClusterLoad::default()
        };
        assert!(bad_trace.validate().is_err());
        assert!(ClusterLoad::one_slow_node(4, 3, 2.0).validate().is_ok());
    }

    #[test]
    fn parse_speeds_accepts_lists_and_rejects_garbage() {
        assert_eq!(parse_speeds("1.0,0.5").unwrap(), vec![1.0, 0.5]);
        assert_eq!(parse_speeds(" 2 , 1 ").unwrap(), vec![2.0, 1.0]);
        for bad in ["", "1.0,,2", "1.0,zero", "-1", "0", "1.0,inf"] {
            let e = parse_speeds(bad).unwrap_err();
            assert!(!e.is_empty(), "{bad:?} must produce a message");
        }
    }

    #[test]
    fn parse_load_specs() {
        assert_eq!(LoadSpec::parse("none").unwrap(), LoadSpec::None);
        assert_eq!(
            LoadSpec::parse("step:1@5x2").unwrap(),
            LoadSpec::Step {
                node: 1,
                at_ns: 5_000_000,
                slowdown: 2.0
            }
        );
        assert_eq!(
            LoadSpec::parse("phase:20/5x3").unwrap(),
            LoadSpec::All(LoadTrace::Phase {
                period_ns: 20_000_000,
                busy_ns: 5_000_000,
                slowdown: 3.0
            })
        );
        assert_eq!(
            LoadSpec::parse("burst:40/10x1.5").unwrap(),
            LoadSpec::All(LoadTrace::Burst {
                period_ns: 40_000_000,
                busy_ns: 10_000_000,
                slowdown: 1.5
            })
        );
        for bad in [
            "",
            "step",
            "step:1x2",
            "step:x@5x2",
            "phase:0/0x2",
            "phase:5/9x2",
            "burst:10/5x0.5",
            "tsunami:1/1x2",
            "step:1@5",
        ] {
            let e = LoadSpec::parse(bad).unwrap_err();
            assert!(!e.is_empty(), "{bad:?} must produce a message");
        }
    }

    #[test]
    fn load_spec_expands_to_traces() {
        let t = LoadSpec::parse("step:2@1x2")
            .unwrap()
            .into_traces(4)
            .unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0], LoadTrace::Flat);
        assert!(matches!(t[2], LoadTrace::Step { .. }));
        assert!(LoadSpec::parse("step:5@1x2")
            .unwrap()
            .into_traces(4)
            .is_err());
        assert!(LoadSpec::parse("none")
            .unwrap()
            .into_traces(3)
            .unwrap()
            .is_empty());
        let all = LoadSpec::parse("burst:10/2x2")
            .unwrap()
            .into_traces(3)
            .unwrap();
        assert_eq!(all.len(), 3);
    }
}
