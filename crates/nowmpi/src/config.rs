//! MPI layer configuration.

use now_net::NetworkConfig;

/// Configuration for an MPI run.
#[derive(Debug, Clone)]
pub struct MpiConfig {
    /// Interconnect cost model. The paper's MPI baseline is MPICH over
    /// TCP, which is slightly slower per message and per byte than
    /// TreadMarks' UDP path.
    pub net: NetworkConfig,
    /// Modeled MPI envelope overhead per message (communicator, tag,
    /// matching headers) in addition to transport headers.
    pub envelope_bytes: usize,
}

impl MpiConfig {
    /// Paper platform: MPICH over TCP, ~8.8 MB/s max bandwidth.
    pub fn paper(nodes: usize) -> Self {
        MpiConfig {
            net: NetworkConfig::paper_tcp(nodes),
            envelope_bytes: 16,
        }
    }

    /// Near-zero-cost functional-test configuration.
    pub fn fast_test(nodes: usize) -> Self {
        MpiConfig {
            net: NetworkConfig::fast_test(nodes),
            envelope_bytes: 16,
        }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.net.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert_eq!(MpiConfig::paper(8).ranks(), 8);
        let tcp = MpiConfig::paper(2).net;
        let udp = NetworkConfig::paper_udp(2);
        assert!(
            tcp.bandwidth_bps < udp.bandwidth_bps,
            "TCP path is the slower one"
        );
    }
}
