//! # nowmpi — an MPI subset over the simulated workstation network
//!
//! The baseline the SC'98 paper compares against: message passing (MPICH
//! over TCP on the same 100 Mbps switched Ethernet). This crate provides
//! typed point-to-point communication and the collectives the five
//! applications need, running over the same [`now_net`] substrate as the
//! DSM, so run times and traffic statistics are directly comparable.
//!
//! SPMD model: [`run_mpi`] starts one rank per workstation, all executing
//! the same function.
//!
//! ```
//! use nowmpi::{run_mpi, MpiConfig};
//!
//! let out = run_mpi(MpiConfig::fast_test(4), |mpi| {
//!     let mine = vec![mpi.rank() as u64 + 1];
//!     let sum = mpi.allreduce(&mine, |a, b| a + b);
//!     sum[0]
//! });
//! assert!(out.results.iter().all(|&s| s == 1 + 2 + 3 + 4));
//! ```

#![warn(missing_docs)]

mod collectives;
mod comm;
mod config;
mod system;

pub use comm::{MpiRank, Status, ANY_SOURCE, ANY_TAG};
pub use config::MpiConfig;
pub use system::{run_mpi, MpiOutcome};
