//! SPMD bring-up: run one rank per simulated workstation.

use crate::comm::{MpiMsg, MpiRank};
use crate::config::MpiConfig;
use now_net::{Network, StatsSnapshot};
use std::sync::Arc;
use std::thread;

/// Results of an MPI run.
#[derive(Debug)]
pub struct MpiOutcome<R> {
    /// Per-rank return values, in rank order.
    pub results: Vec<R>,
    /// The slowest rank's final virtual clock — the program's run time.
    pub vt_ns: u64,
    /// Network traffic statistics.
    pub net: StatsSnapshot,
}

impl<R> MpiOutcome<R> {
    /// Virtual run time in seconds.
    pub fn vt_seconds(&self) -> f64 {
        self.vt_ns as f64 / 1e9
    }
}

/// Launch `cfg.ranks()` ranks, each executing `f` (SPMD), and collect the
/// per-rank results plus timing/traffic statistics.
pub fn run_mpi<R, F>(cfg: MpiConfig, f: F) -> MpiOutcome<R>
where
    R: Send + 'static,
    F: Fn(&mut MpiRank) -> R + Send + Sync + 'static,
{
    let eps = Network::build::<MpiMsg>(cfg.net.clone());
    let f = Arc::new(f);
    let stats_ep = eps[0].clone();
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            let f = f.clone();
            let envelope = cfg.envelope_bytes;
            thread::Builder::new()
                .name(format!("mpi-rank-{}", ep.id()))
                .spawn(move || {
                    let mut rank = MpiRank::new(ep, envelope);
                    // Re-arm the meter on the owning thread.
                    rank.meter.restart();
                    let r = f(&mut rank);
                    rank.meter.charge(&rank.clock.clone());
                    (r, rank.clock.now())
                })
                .expect("spawn rank thread")
        })
        .collect();

    let mut results = Vec::with_capacity(handles.len());
    let mut vt_ns = 0;
    for h in handles {
        let (r, vt) = h.join().expect("rank thread panicked");
        results.push(r);
        vt_ns = vt_ns.max(vt);
    }
    MpiOutcome {
        results,
        vt_ns,
        net: stats_ep.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize) -> MpiConfig {
        MpiConfig::fast_test(n)
    }

    #[test]
    fn pt2pt_roundtrip() {
        let out = run_mpi(cfg(2), |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 5, &[1.5f64, 2.5]);
                let back: Vec<f64> = mpi.recv(1, 6);
                back[0]
            } else {
                let xs: Vec<f64> = mpi.recv(0, 5);
                mpi.send(0, 6, &[xs.iter().sum::<f64>()]);
                0.0
            }
        });
        assert_eq!(out.results[0], 4.0);
        assert_eq!(out.net.total_msgs(), 2);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run_mpi(cfg(2), |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 1, &[10u32]);
                mpi.send(1, 2, &[20u32]);
                0
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let b: Vec<u32> = mpi.recv(0, 2);
                let a: Vec<u32> = mpi.recv(0, 1);
                (b[0] * 100 + a[0]) as i64
            }
        });
        assert_eq!(out.results[1], 2010);
    }

    #[test]
    fn barrier_completes_at_all_sizes() {
        for p in [1usize, 2, 3, 5, 8] {
            let out = run_mpi(cfg(p), |mpi| {
                for _ in 0..3 {
                    mpi.barrier();
                }
                mpi.rank()
            });
            assert_eq!(out.results.len(), p);
        }
    }

    #[test]
    fn bcast_from_each_root() {
        for p in [2usize, 3, 4, 7] {
            for root in 0..p {
                let out = run_mpi(cfg(p), move |mpi| {
                    let mut data = if mpi.rank() == root {
                        vec![42u64, 43]
                    } else {
                        vec![0u64, 0]
                    };
                    mpi.bcast(root, &mut data);
                    data
                });
                for r in out.results {
                    assert_eq!(r, vec![42, 43], "p={p} root={root}");
                }
            }
        }
    }

    #[test]
    fn reduce_and_allreduce() {
        let out = run_mpi(cfg(5), |mpi| {
            let local = vec![mpi.rank() as u64, 1u64];
            let red = mpi.reduce(2, &local, |a, b| a + b);
            let all = mpi.allreduce(&local, |a, b| a + b);
            (red, all)
        });
        for (r, (red, all)) in out.results.into_iter().enumerate() {
            assert_eq!(all, vec![1 + 2 + 3 + 4, 5]); // sum of ranks 0..=4, sum of the ones
            if r == 2 {
                assert_eq!(red, Some(vec![10, 5]));
            } else {
                assert_eq!(red, None);
            }
        }
    }

    #[test]
    fn gather_allgather_scatter() {
        let out = run_mpi(cfg(4), |mpi| {
            let r = mpi.rank();
            let g = mpi.gather(1, &[r as u32 * 2]);
            let ag = mpi.allgather(&[r as u32]);
            let sc = mpi.scatter(0, (r == 0).then(|| vec![9u32, 8, 7, 6]).as_deref());
            (g, ag, sc)
        });
        for (r, (g, ag, sc)) in out.results.into_iter().enumerate() {
            if r == 1 {
                assert_eq!(g, Some(vec![0, 2, 4, 6]));
            } else {
                assert_eq!(g, None);
            }
            assert_eq!(ag, vec![0, 1, 2, 3]);
            assert_eq!(sc, vec![9 - r as u32]);
        }
    }

    #[test]
    fn alltoall_transposes_blocks() {
        let p = 4;
        let out = run_mpi(cfg(p), move |mpi| {
            let r = mpi.rank();
            // Block j of rank r contains value r*10 + j.
            let send: Vec<u32> = (0..p).map(|j| (r * 10 + j) as u32).collect();
            mpi.alltoall(&send)
        });
        for (r, recv) in out.results.into_iter().enumerate() {
            // Block j of the result should be j*10 + r.
            let expect: Vec<u32> = (0..p).map(|j| (j * 10 + r) as u32).collect();
            assert_eq!(recv, expect, "rank {r}");
        }
    }

    #[test]
    fn sendrecv_ring_shift() {
        let p = 3;
        let out = run_mpi(cfg(p), move |mpi| {
            let r = mpi.rank();
            let right = (r + 1) % p;
            let left = (r + p - 1) % p;
            let got = mpi.sendrecv(right, 7, &[r as u64], left, 7);
            got[0]
        });
        assert_eq!(out.results, vec![2, 0, 1]);
    }

    #[test]
    fn vt_advances_with_traffic() {
        let out = run_mpi(cfg(2), |mpi| {
            if mpi.rank() == 0 {
                mpi.send(1, 0, &[0u8; 1000]);
            } else {
                let _: Vec<u8> = mpi.recv(0, 0);
            }
            mpi.barrier();
        });
        assert!(out.vt_ns > 0);
    }
}
