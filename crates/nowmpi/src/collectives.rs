//! Collective operations over point-to-point messages.
//!
//! Algorithms are the classic ones MPICH used on Ethernet clusters:
//! dissemination barrier, binomial-tree broadcast/reduce, and pairwise
//! all-to-all. All collectives use reserved negative tags so they never
//! collide with application traffic.

use crate::comm::{bytes_of, vec_from, MpiRank, COLLECTIVE_TAG_BASE};
use now_net::Pod;

const TAG_BARRIER: i32 = COLLECTIVE_TAG_BASE - 1;
const TAG_BCAST: i32 = COLLECTIVE_TAG_BASE - 2;
const TAG_REDUCE: i32 = COLLECTIVE_TAG_BASE - 3;
const TAG_GATHER: i32 = COLLECTIVE_TAG_BASE - 4;
const TAG_ALLTOALL: i32 = COLLECTIVE_TAG_BASE - 5;
const TAG_SCATTER: i32 = COLLECTIVE_TAG_BASE - 6;

impl MpiRank {
    /// `MPI_Barrier`: dissemination algorithm, ⌈log₂ p⌉ rounds.
    pub fn barrier(&mut self) {
        self.metered(|s| {
            let (r, p) = (s.rank(), s.size());
            let mut k = 1;
            let mut round = 0;
            while k < p {
                let dst = (r + k) % p;
                let src = (r + p - k) % p;
                s.send_raw(dst, TAG_BARRIER - round * 64, vec![0u8; 1]);
                let _ = s.recv_match_raw(src as i32, TAG_BARRIER - round * 64);
                k <<= 1;
                round += 1;
            }
        });
    }

    /// `MPI_Bcast`: binomial tree rooted at `root`.
    pub fn bcast<T: Pod>(&mut self, root: usize, data: &mut Vec<T>) {
        let out = self.metered(|s| {
            let (r, p) = (s.rank(), s.size());
            let vr = (r + p - root) % p; // virtual rank with root at 0
            let mut buf = if r == root {
                Some(bytes_of(data))
            } else {
                None
            };
            // Receive from parent (highest set bit of vr).
            if vr != 0 {
                let parent_vr = vr & (vr - 1); // clear lowest set bit? see below
                                               // Binomial tree: parent clears the *lowest* set bit.
                let parent = (parent_vr + root) % p;
                let bytes = s.recv_match_raw(parent as i32, TAG_BCAST);
                buf = Some(bytes);
            }
            let bytes = buf.expect("bcast buffer");
            // Forward to children: set bits above our lowest set bit.
            let lowest = if vr == 0 {
                p.next_power_of_two()
            } else {
                vr & vr.wrapping_neg()
            };
            let mut mask = 1;
            while mask < lowest && mask < p {
                let child_vr = vr | mask;
                if child_vr != vr && child_vr < p {
                    let child = (child_vr + root) % p;
                    s.send_raw(child, TAG_BCAST, bytes.clone());
                }
                mask <<= 1;
            }
            vec_from::<T>(&bytes)
        });
        *data = out;
    }

    /// `MPI_Reduce`: binomial-tree reduction to `root`; returns
    /// `Some(result)` on the root, `None` elsewhere.
    pub fn reduce<T: Pod>(
        &mut self,
        root: usize,
        local: &[T],
        op: impl Fn(T, T) -> T,
    ) -> Option<Vec<T>> {
        let out = self.metered(|s| {
            let (r, p) = (s.rank(), s.size());
            let vr = (r + p - root) % p;
            let mut acc: Vec<T> = local.to_vec();
            let mut mask = 1;
            while mask < p {
                if vr & mask != 0 {
                    // Send to the partner that clears this bit, then done.
                    let parent = ((vr & !mask) + root) % p;
                    s.send_raw(parent, TAG_REDUCE, bytes_of(&acc));
                    return None;
                }
                let child_vr = vr | mask;
                if child_vr < p {
                    let child = (child_vr + root) % p;
                    let theirs: Vec<T> = vec_from(&s.recv_match_raw(child as i32, TAG_REDUCE));
                    assert_eq!(theirs.len(), acc.len(), "reduce length mismatch");
                    for (a, b) in acc.iter_mut().zip(theirs) {
                        *a = op(*a, b);
                    }
                }
                mask <<= 1;
            }
            Some(acc)
        });
        out
    }

    /// `MPI_Allreduce` = reduce to 0 + broadcast.
    pub fn allreduce<T: Pod>(&mut self, local: &[T], op: impl Fn(T, T) -> T) -> Vec<T> {
        let reduced = self.reduce(0, local, op);
        // Non-root ranks only need a correctly-typed placeholder — the
        // broadcast overwrites it. (`local` itself also covers the
        // zero-length case, where indexing for a fill value would panic.)
        let mut data = reduced.unwrap_or_else(|| local.to_vec());
        self.bcast(0, &mut data);
        data
    }

    /// `MPI_Gather`: concatenate equal-sized contributions at `root`
    /// (rank order). Returns `Some` on the root.
    pub fn gather<T: Pod>(&mut self, root: usize, local: &[T]) -> Option<Vec<T>> {
        self.metered(|s| {
            let (r, p) = (s.rank(), s.size());
            if r == root {
                let mut out = Vec::with_capacity(local.len() * p);
                for src in 0..p {
                    if src == r {
                        out.extend_from_slice(local);
                    } else {
                        let theirs: Vec<T> = vec_from(&s.recv_match_raw(src as i32, TAG_GATHER));
                        out.extend(theirs);
                    }
                }
                Some(out)
            } else {
                s.send_raw(root, TAG_GATHER, bytes_of(local));
                None
            }
        })
    }

    /// `MPI_Allgather` = gather at 0 + broadcast.
    pub fn allgather<T: Pod>(&mut self, local: &[T]) -> Vec<T> {
        let gathered = self.gather(0, local);
        let mut data = gathered.unwrap_or_default();
        self.bcast(0, &mut data);
        data
    }

    /// `MPI_Scatter`: root splits `data` into `size()` equal parts;
    /// everyone receives their part.
    pub fn scatter<T: Pod>(&mut self, root: usize, data: Option<&[T]>) -> Vec<T> {
        self.metered(|s| {
            let (r, p) = (s.rank(), s.size());
            if r == root {
                let data = data.expect("root must provide scatter data");
                assert_eq!(data.len() % p, 0, "scatter data not divisible by ranks");
                let per = data.len() / p;
                for dst in 0..p {
                    if dst != r {
                        s.send_raw(
                            dst,
                            TAG_SCATTER,
                            bytes_of(&data[dst * per..(dst + 1) * per]),
                        );
                    }
                }
                data[r * per..(r + 1) * per].to_vec()
            } else {
                vec_from(&s.recv_match_raw(root as i32, TAG_SCATTER))
            }
        })
    }

    /// `MPI_Alltoall`: `data` holds `size()` equal blocks; block `i` goes
    /// to rank `i`. Returns the received blocks in rank order. Pairwise
    /// exchange, p−1 rounds.
    pub fn alltoall<T: Pod>(&mut self, data: &[T]) -> Vec<T> {
        self.metered(|s| {
            let (r, p) = (s.rank(), s.size());
            assert_eq!(data.len() % p, 0, "alltoall data not divisible by ranks");
            let per = data.len() / p;
            let mut out: Vec<T> = Vec::with_capacity(data.len());
            out.extend_from_slice(data); // placeholder layout
            out[r * per..(r + 1) * per].copy_from_slice(&data[r * per..(r + 1) * per]);
            for off in 1..p {
                let dst = (r + off) % p;
                let src = (r + p - off) % p;
                s.send_raw(
                    dst,
                    TAG_ALLTOALL,
                    bytes_of(&data[dst * per..(dst + 1) * per]),
                );
                let theirs: Vec<T> = vec_from(&s.recv_match_raw(src as i32, TAG_ALLTOALL));
                out[src * per..(src + 1) * per].copy_from_slice(&theirs);
            }
            out
        })
    }
}
