//! Point-to-point communication: typed send/recv with tag matching.

use now_net::{ComputeMeter, Delivered, Endpoint, Pod, VirtualClock, Wire};
use std::collections::VecDeque;
use std::sync::Arc;

/// Wildcard for [`MpiRank::recv_from`]'s source (MPI_ANY_SOURCE).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (MPI_ANY_TAG).
pub const ANY_TAG: i32 = -1;

/// One MPI message on the wire.
pub(crate) struct MpiMsg {
    pub tag: i32,
    pub bytes: Vec<u8>,
    pub envelope: usize,
}

impl Wire for MpiMsg {
    fn wire_bytes(&self) -> usize {
        self.envelope + self.bytes.len()
    }
    fn kind(&self) -> &'static str {
        if self.tag <= COLLECTIVE_TAG_BASE {
            "mpi_collective"
        } else {
            "mpi_pt2pt"
        }
    }
}

/// Reserved tag range for collectives (below any user tag).
pub(crate) const COLLECTIVE_TAG_BASE: i32 = -1000;

/// Delivery metadata returned by receives (an `MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Sending rank.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload bytes received.
    pub bytes: usize,
}

/// One MPI process (rank). Owns the node's network endpoint; all
/// operations are blocking, eager-buffered sends and tag-matched receives.
pub struct MpiRank {
    pub(crate) ep: Endpoint<MpiMsg>,
    pub(crate) clock: Arc<VirtualClock>,
    pub(crate) meter: ComputeMeter,
    pub(crate) envelope: usize,
    /// Arrived-but-unmatched messages (MPI's unexpected-message queue).
    pending: VecDeque<Delivered<MpiMsg>>,
}

impl MpiRank {
    pub(crate) fn new(ep: Endpoint<MpiMsg>, envelope: usize) -> Self {
        let scale = ep.cfg().compute_scale;
        MpiRank {
            clock: ep.clock().clone(),
            meter: ComputeMeter::new(scale),
            ep,
            envelope,
            pending: VecDeque::new(),
        }
    }

    /// This process's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.ep.id()
    }

    /// Communicator size (number of workstations).
    #[inline]
    pub fn size(&self) -> usize {
        self.ep.nodes()
    }

    /// This rank's virtual clock in nanoseconds.
    pub fn now_ns(&mut self) -> u64 {
        self.meter.charge(&self.clock);
        let t = self.clock.now();
        self.meter.restart();
        t
    }

    pub(crate) fn metered<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        self.meter.charge(&self.clock);
        let r = f(self);
        self.meter.restart();
        r
    }

    /// Blocking typed send (`MPI_Send`, eager protocol).
    pub fn send<T: Pod>(&mut self, dst: usize, tag: i32, data: &[T]) {
        assert!(tag >= 0, "negative tags are reserved");
        self.metered(|s| s.send_raw(dst, tag, bytes_of(data)));
    }

    pub(crate) fn send_raw(&mut self, dst: usize, tag: i32, bytes: Vec<u8>) {
        self.ep.send(
            dst,
            MpiMsg {
                tag,
                bytes,
                envelope: self.envelope,
            },
        );
    }

    /// Blocking typed receive from a specific source and tag
    /// (`MPI_Recv`). Panics if the payload size is not a multiple of
    /// `size_of::<T>()`.
    pub fn recv<T: Pod>(&mut self, src: usize, tag: i32) -> Vec<T> {
        self.recv_from(src as i32, tag).0
    }

    /// Blocking typed receive with wildcards ([`ANY_SOURCE`]/[`ANY_TAG`]).
    pub fn recv_from<T: Pod>(&mut self, src: i32, tag: i32) -> (Vec<T>, Status) {
        self.metered(|s| {
            let d = s.recv_match(src, tag);
            let status = Status {
                source: d.src,
                tag: d.msg.tag,
                bytes: d.msg.bytes.len(),
            };
            (vec_from(&d.msg.bytes), status)
        })
    }

    /// Combined send+receive (deadlock-free pairwise exchange).
    pub fn sendrecv<T: Pod>(
        &mut self,
        dst: usize,
        send_tag: i32,
        data: &[T],
        src: usize,
        recv_tag: i32,
    ) -> Vec<T> {
        assert!(send_tag >= 0 && recv_tag >= 0, "negative tags are reserved");
        self.metered(|s| {
            s.send_raw(dst, send_tag, bytes_of(data));
            let d = s.recv_match(src as i32, recv_tag);
            vec_from(&d.msg.bytes)
        })
    }

    /// Match a message against (src, tag), consulting the unexpected
    /// queue first. Arrival time is charged when the message is consumed.
    pub(crate) fn recv_match(&mut self, src: i32, tag: i32) -> Delivered<MpiMsg> {
        let matches = |d: &Delivered<MpiMsg>| {
            (src == ANY_SOURCE || d.src == src as usize) && (tag == ANY_TAG || d.msg.tag == tag)
        };
        if let Some(pos) = self.pending.iter().position(matches) {
            let d = self.pending.remove(pos).expect("position valid");
            self.ep.charge_rx(&d);
            return d;
        }
        loop {
            let d = self.ep.recv();
            if matches(&d) {
                self.ep.charge_rx(&d);
                return d;
            }
            self.pending.push_back(d);
        }
    }

    pub(crate) fn recv_match_raw(&mut self, src: i32, tag: i32) -> Vec<u8> {
        self.recv_match(src, tag).msg.bytes
    }

    /// Non-blocking probe (`MPI_Iprobe` with wildcards): reports whether a
    /// message is available without consuming it.
    pub fn iprobe(&mut self) -> Option<Status> {
        self.metered(|s| {
            while let Some(d) = s.ep.try_recv() {
                s.pending.push_back(d);
            }
            s.pending.front().map(|d| Status {
                source: d.src,
                tag: d.msg.tag,
                bytes: d.msg.bytes.len(),
            })
        })
    }
}

pub(crate) fn bytes_of<T: Pod>(data: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; std::mem::size_of_val(data)];
    // SAFETY: T is Pod; sizes match; no overlap.
    unsafe {
        std::ptr::copy_nonoverlapping(data.as_ptr() as *const u8, out.as_mut_ptr(), out.len());
    }
    out
}

pub(crate) fn vec_from<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let size = std::mem::size_of::<T>();
    assert!(
        size == 0 || bytes.len().is_multiple_of(size),
        "payload of {} bytes is not a whole number of {}-byte elements",
        bytes.len(),
        size
    );
    let n = bytes.len().checked_div(size).unwrap_or(0);
    let mut out: Vec<T> = Vec::with_capacity(n);
    // SAFETY: T is Pod; capacity reserved; lengths checked above.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_conversion_roundtrip() {
        let xs = [1.5f64, -2.0, 3.25];
        let bytes = bytes_of(&xs);
        assert_eq!(bytes.len(), 24);
        let back: Vec<f64> = vec_from(&bytes);
        assert_eq!(back, xs);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn misaligned_payload_panics() {
        let _: Vec<u64> = vec_from(&[0u8; 7]);
    }

    #[test]
    fn mpi_msg_wire_size_includes_envelope() {
        let m = MpiMsg {
            tag: 0,
            bytes: vec![0; 100],
            envelope: 16,
        };
        assert_eq!(m.wire_bytes(), 116);
        assert_eq!(m.kind(), "mpi_pt2pt");
        let c = MpiMsg {
            tag: COLLECTIVE_TAG_BASE - 1,
            bytes: vec![],
            envelope: 16,
        };
        assert_eq!(c.kind(), "mpi_collective");
    }
}
