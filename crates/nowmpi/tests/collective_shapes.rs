//! Collectives on awkward shapes: a single rank, non-power-of-two rank
//! counts, and zero-length buffers. The binomial-tree and pairwise
//! algorithms all branch on bit patterns of the rank count; these shapes
//! exercise every branch the five applications' "nice" sizes never hit.

use nowmpi::{run_mpi, MpiConfig};

const ODD_SIZES: [usize; 4] = [3, 5, 6, 7];

#[test]
fn single_rank_collectives_are_identities() {
    let out = run_mpi(MpiConfig::fast_test(1), |mpi| {
        mpi.barrier();
        let mut b = vec![7u64, 8];
        mpi.bcast(0, &mut b);
        let red = mpi.reduce(0, &[5u64], |a, b| a + b);
        let all = mpi.allreduce(&[3u64], |a, b| a + b);
        let a2a = mpi.alltoall(&[1u32, 2, 3]);
        let g = mpi.gather(0, &[9u32]);
        (b, red, all, a2a, g)
    });
    let (b, red, all, a2a, g) = out.results.into_iter().next().unwrap();
    assert_eq!(b, vec![7, 8]);
    assert_eq!(red, Some(vec![5]));
    assert_eq!(all, vec![3]);
    assert_eq!(a2a, vec![1, 2, 3]);
    assert_eq!(g, Some(vec![9]));
    assert_eq!(out.net.total_msgs(), 0, "one rank never touches the wire");
}

#[test]
fn bcast_non_power_of_two_every_root() {
    for p in ODD_SIZES {
        for root in 0..p {
            let out = run_mpi(MpiConfig::fast_test(p), move |mpi| {
                let mut data = if mpi.rank() == root {
                    vec![root as u64, 1_000 + root as u64]
                } else {
                    vec![0u64; 2]
                };
                mpi.bcast(root, &mut data);
                data
            });
            for (r, got) in out.results.into_iter().enumerate() {
                assert_eq!(
                    got,
                    vec![root as u64, 1_000 + root as u64],
                    "p={p} root={root} rank={r}"
                );
            }
        }
    }
}

#[test]
fn reduce_non_power_of_two_every_root() {
    for p in ODD_SIZES {
        for root in 0..p {
            let out = run_mpi(MpiConfig::fast_test(p), move |mpi| {
                let local = vec![mpi.rank() as u64, 1];
                mpi.reduce(root, &local, |a, b| a + b)
            });
            let rank_sum: u64 = (0..p as u64).sum();
            for (r, got) in out.results.into_iter().enumerate() {
                if r == root {
                    assert_eq!(got, Some(vec![rank_sum, p as u64]), "p={p} root={root}");
                } else {
                    assert_eq!(got, None, "p={p} root={root} rank={r}");
                }
            }
        }
    }
}

#[test]
fn alltoall_non_power_of_two() {
    for p in ODD_SIZES {
        let out = run_mpi(MpiConfig::fast_test(p), move |mpi| {
            let r = mpi.rank();
            // Two elements per block: block j of rank r is [r*100+j, j].
            let send: Vec<u32> = (0..p)
                .flat_map(|j| [(r * 100 + j) as u32, j as u32])
                .collect();
            mpi.alltoall(&send)
        });
        for (r, recv) in out.results.into_iter().enumerate() {
            let expect: Vec<u32> = (0..p)
                .flat_map(|j| [(j * 100 + r) as u32, r as u32])
                .collect();
            assert_eq!(recv, expect, "p={p} rank={r}");
        }
    }
}

#[test]
fn zero_length_bcast() {
    for p in [1usize, 2, 5] {
        let out = run_mpi(MpiConfig::fast_test(p), |mpi| {
            let mut data: Vec<u64> = Vec::new();
            mpi.bcast(0, &mut data);
            data.len()
        });
        assert!(out.results.iter().all(|&l| l == 0), "p={p}");
    }
}

#[test]
fn zero_length_reduce_and_allreduce() {
    for p in [1usize, 3, 4] {
        let out = run_mpi(MpiConfig::fast_test(p), |mpi| {
            let empty: Vec<u64> = Vec::new();
            let red = mpi.reduce(0, &empty, |a, b| a + b);
            let all = mpi.allreduce(&empty, |a, b| a + b);
            (red, all)
        });
        for (r, (red, all)) in out.results.into_iter().enumerate() {
            if r == 0 {
                assert_eq!(red, Some(Vec::new()), "p={p}");
            } else {
                assert_eq!(red, None, "p={p} rank={r}");
            }
            assert_eq!(all, Vec::<u64>::new(), "p={p} rank={r}");
        }
    }
}

#[test]
fn zero_length_alltoall() {
    for p in [1usize, 3, 6] {
        let out = run_mpi(MpiConfig::fast_test(p), |mpi| {
            let empty: Vec<u32> = Vec::new();
            mpi.alltoall(&empty)
        });
        assert!(out.results.iter().all(|v| v.is_empty()), "p={p}");
    }
}
