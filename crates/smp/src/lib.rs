//! # smp — SMP-cluster execution: multi-threaded workstations
//!
//! The SC'98 paper runs **one** OpenMP thread per uniprocessor
//! workstation, so every barrier, reduction and chunk grab pays DSM
//! protocol traffic. The dominant follow-on platform is the *SMP
//! cluster*: each node hosts several processors sharing hardware-coherent
//! memory, and hybrid designs (MPI+OpenMP, two-level runtimes such as
//! Cashmere-2L) move synchronization on-node to slash inter-node
//! messages.
//!
//! This crate is the node-level half of that design for the NOW
//! simulator:
//!
//! * [`run_team`] turns one node's parallel-region entry into a *team* of
//!   `threads_per_node` host threads sharing the node's single [`Tmk`]
//!   DSM process ([`Tmk::smp_fork`] handles: shared pages, twins, diffs —
//!   intra-node accesses are message-free).
//! * [`Team`] provides the intra-node synchronization the two-level
//!   runtime in `nomp` is built from: a sense-reversing local barrier
//!   that combines the threads' virtual-time lanes, per-site combine
//!   cells for reductions (one DSM contribution per node), per-site
//!   chunk buffers for node-level loop scheduling, and the idle/wake
//!   bookkeeping hierarchical task scheduling needs. (Serializing a
//!   node's threads on the DSM protocol itself — including whole lock
//!   tenures — is the re-entrant node gate inside `tmk`, see
//!   `Tmk::node_transaction`.)
//! * [`SmpConfig`] is the small intra-node cost model: everything is
//!   charged against the threads' lanes on the node's `VirtualClock`,
//!   never the wire.
//!
//! Time model: each local thread's compute advances its own
//! [`now_net::ThreadLane`]; only protocol operations serialize on the
//! node clock (one NIC). A region on a `nodes × threads_per_node`
//! topology therefore gets genuine intra-node parallelism in virtual
//! time while the DSM message counts reflect one protocol endpoint per
//! node.

#![warn(missing_docs)]

use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use tmk::Tmk;

/// Intra-node cost model and team size for one SMP workstation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpConfig {
    /// Application threads per workstation (1 = the paper's platform).
    pub threads_per_node: usize,
    /// Modeled cost of one local sense-reversing barrier episode.
    pub local_barrier_ns: u64,
    /// Modeled cost of one local lock/combine-cell tenure.
    pub local_lock_ns: u64,
    /// Modeled cost of spawning one local thread at region entry.
    pub fork_thread_ns: u64,
}

impl SmpConfig {
    /// Paper-era SMP costs (µs-scale shared-memory synchronization on a
    /// quad Pentium Pro — three orders of magnitude below the DSM's
    /// network costs).
    pub fn paper(threads_per_node: usize) -> Self {
        SmpConfig {
            threads_per_node,
            local_barrier_ns: 4_000,
            local_lock_ns: 1_000,
            fork_thread_ns: 25_000,
        }
    }

    /// Near-zero-cost variant for functional tests.
    pub fn fast_test(threads_per_node: usize) -> Self {
        SmpConfig {
            threads_per_node,
            local_barrier_ns: 20,
            local_lock_ns: 5,
            fork_thread_ns: 10,
        }
    }
}

// ----------------------------------------------------------------------
// Team
// ----------------------------------------------------------------------

#[derive(Default)]
struct BarState {
    arrived: usize,
    max_vt: u64,
    gen: u64,
    depart_vt: u64,
}

#[derive(Default)]
struct ParkState {
    idle: usize,
    gen: u64,
    done: bool,
}

/// Shared handle to one loop site's node-level chunk buffer (as handed
/// out by [`Team::loop_site`]; cacheable across `next_chunk` calls).
pub type SharedChunkBuf = Arc<Mutex<ChunkBuf>>;

/// Node-level buffer of one work-shared loop's iterations: the node
/// grabs chunks from the DSM counter at node granularity and local
/// threads subdivide them here, message-free.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChunkBuf {
    /// First iteration still buffered on this node.
    pub lo: usize,
    /// One past the last buffered iteration.
    pub hi: usize,
    /// Per-local-thread take size for the current node chunk.
    pub take: usize,
    /// Adaptive scheduling: virtual instant of the node's previous
    /// DSM-level claim (the refill turns it into an observed rate).
    pub claim_vt: u64,
    /// Adaptive scheduling: length of the node's previous claim.
    pub claim_len: u64,
}

type Cell = (usize, Option<Box<dyn Any + Send>>);

/// Outcome of the local barrier's gather phase.
pub enum Arrival {
    /// This thread is the node's representative: all local threads have
    /// arrived and their combined (maximum) frontier is enclosed. The
    /// representative performs the node-level work (e.g. the DSM
    /// barrier) and then calls [`Team::release`].
    Representative(u64),
    /// A non-representative thread: the representative has released the
    /// episode; the enclosed value is the departure frontier to adopt.
    Departed(u64),
}

/// Outcome of a task worker going locally idle (see [`Team::task_enter_idle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleOutcome {
    /// Every local thread is idle: the caller becomes the node's agent
    /// in the DSM-level termination protocol.
    Agent,
    /// A local push (or wake) raced the caller's empty sweep — hunt again.
    Retry,
    /// The scope terminated while the caller was parked.
    Done,
}

/// Shared intra-node state of one SMP team (one per node per region).
pub struct Team {
    cfg: SmpConfig,
    bar: StdMutex<BarState>,
    bar_cv: Condvar,
    cells: Mutex<HashMap<u32, Cell>>,
    sites: Mutex<HashMap<u32, Arc<Mutex<ChunkBuf>>>>,
    park: StdMutex<ParkState>,
    park_cv: Condvar,
    finals: Mutex<u64>,
    poisoned: AtomicBool,
}

impl Team {
    /// A fresh team for `cfg.threads_per_node` local threads.
    pub fn new(cfg: SmpConfig) -> Self {
        assert!(cfg.threads_per_node >= 1, "team needs at least one thread");
        Team {
            cfg,
            bar: StdMutex::new(BarState::default()),
            bar_cv: Condvar::new(),
            cells: Mutex::new(HashMap::new()),
            sites: Mutex::new(HashMap::new()),
            park: StdMutex::new(ParkState::default()),
            park_cv: Condvar::new(),
            finals: Mutex::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    /// The cost model this team was built with.
    pub fn cfg(&self) -> &SmpConfig {
        &self.cfg
    }

    /// Local threads on this node.
    pub fn tpn(&self) -> usize {
        self.cfg.threads_per_node
    }

    /// Mark the team dead after a sibling panic, waking every waiter so
    /// the panic propagates instead of deadlocking the node.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        {
            let _g = self.bar.lock().unwrap_or_else(|e| e.into_inner());
            self.bar_cv.notify_all();
        }
        {
            let mut p = self.park.lock().unwrap_or_else(|e| e.into_inner());
            p.done = true;
            self.park_cv.notify_all();
        }
    }

    fn check_poison(&self) {
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("SMP team poisoned by a sibling thread panic");
        }
    }

    // ------------------------------------------------------------------
    // Local sense-reversing barrier (virtual-time combining)
    // ------------------------------------------------------------------

    /// Gather phase of the two-level barrier: every local thread arrives
    /// with its lane frontier. `local_tid` 0 is the representative — it
    /// returns once all threads have arrived, with the combined maximum
    /// frontier, performs the node-level step, then calls
    /// [`Team::release`]. Everyone else blocks until the release and
    /// returns the departure frontier.
    pub fn gather(&self, local_tid: usize, my_vt: u64) -> Arrival {
        self.check_poison();
        let mut st = self.bar.lock().unwrap_or_else(|e| e.into_inner());
        st.max_vt = st.max_vt.max(my_vt);
        st.arrived += 1;
        self.bar_cv.notify_all();
        if local_tid == 0 {
            while st.arrived < self.cfg.threads_per_node {
                self.check_poison();
                st = self.bar_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            Arrival::Representative(st.max_vt)
        } else {
            let gen = st.gen;
            while st.gen == gen {
                self.check_poison();
                st = self.bar_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            Arrival::Departed(st.depart_vt)
        }
    }

    /// Release phase: the representative publishes the departure frontier
    /// (its lane after the node-level step) and wakes the episode.
    pub fn release(&self, depart_vt: u64) {
        let mut st = self.bar.lock().unwrap_or_else(|e| e.into_inner());
        st.depart_vt = depart_vt;
        st.arrived = 0;
        st.max_vt = 0;
        st.gen = st.gen.wrapping_add(1);
        self.bar_cv.notify_all();
    }

    // ------------------------------------------------------------------
    // Combine cells (two-level reductions)
    // ------------------------------------------------------------------

    /// Fold `val` into the node's combine cell for reduction site `key`.
    /// The `threads_per_node`-th arriver receives the node total (and the
    /// cell resets for reuse): exactly one thread per node publishes one
    /// DSM contribution, everyone else proceeds immediately.
    pub fn combine<T: Send + 'static>(
        &self,
        key: u32,
        val: T,
        fold: impl FnOnce(T, T) -> T,
    ) -> Option<T> {
        self.check_poison();
        let mut m = self.cells.lock();
        let cell = m.entry(key).or_insert((0, None));
        cell.0 += 1;
        let merged = match cell.1.take() {
            None => val,
            Some(prev) => {
                let prev = *prev
                    .downcast::<T>()
                    .expect("combine cell type mismatch at one reduction site");
                fold(prev, val)
            }
        };
        if cell.0 == self.cfg.threads_per_node {
            m.remove(&key);
            Some(merged)
        } else {
            cell.1 = Some(Box::new(merged));
            None
        }
    }

    // ------------------------------------------------------------------
    // Loop chunk buffers (node-level scheduling)
    // ------------------------------------------------------------------

    /// The node-level chunk buffer of work-shared-loop site `key`
    /// (created empty on first use).
    pub fn loop_site(&self, key: u32) -> SharedChunkBuf {
        self.sites
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(Mutex::new(ChunkBuf::default())))
            .clone()
    }

    // ------------------------------------------------------------------
    // Task idle/wake bookkeeping (hierarchical task scheduling)
    // ------------------------------------------------------------------

    /// Sample the local wake generation. Take this *before* sweeping the
    /// deques: a push that lands after the sweep bumps the generation,
    /// and [`Team::task_enter_idle`] turns the stale sample into a retry.
    pub fn task_gen(&self) -> u64 {
        self.park.lock().unwrap_or_else(|e| e.into_inner()).gen
    }

    /// Signal local work: bump the generation and wake one parked local
    /// thread (called after a local task push, or by the node agent when
    /// a remote steal brought back more work than one thread's worth).
    pub fn task_wake(&self) {
        let mut p = self.park.lock().unwrap_or_else(|e| e.into_inner());
        p.gen = p.gen.wrapping_add(1);
        self.park_cv.notify_one();
    }

    /// Whether any local thread is currently idle (parked or agent).
    pub fn task_has_idle(&self) -> bool {
        self.park.lock().unwrap_or_else(|e| e.into_inner()).idle > 0
    }

    /// A worker found no work anywhere (its sweep started at generation
    /// `gen0`): go locally idle. The last thread to idle becomes the
    /// node's **agent** in the DSM-level termination protocol and stays
    /// counted; other threads park on the host condvar until a wake or
    /// scope termination.
    pub fn task_enter_idle(&self, gen0: u64) -> IdleOutcome {
        self.check_poison();
        let mut p = self.park.lock().unwrap_or_else(|e| e.into_inner());
        if p.done {
            return IdleOutcome::Done;
        }
        if p.gen != gen0 {
            return IdleOutcome::Retry;
        }
        p.idle += 1;
        if p.idle == self.cfg.threads_per_node {
            return IdleOutcome::Agent;
        }
        let sleep_gen = p.gen;
        while !p.done && p.gen == sleep_gen {
            self.check_poison();
            p = self.park_cv.wait(p).unwrap_or_else(|e| e.into_inner());
        }
        if p.done {
            return IdleOutcome::Done;
        }
        p.idle -= 1;
        IdleOutcome::Retry
    }

    /// The agent found work and returns to it: leave the idle set.
    pub fn task_leave_idle(&self) {
        let mut p = self.park.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(p.idle > 0, "task_leave_idle without task_enter_idle");
        p.idle -= 1;
    }

    /// The agent observed global termination: release every parked local
    /// thread for good.
    pub fn task_done(&self) {
        let mut p = self.park.lock().unwrap_or_else(|e| e.into_inner());
        p.done = true;
        self.park_cv.notify_all();
    }

    // ------------------------------------------------------------------
    // Final frontiers
    // ------------------------------------------------------------------

    /// Record one thread's final lane frontier at team teardown.
    pub fn report_final(&self, vt: u64) {
        let mut f = self.finals.lock();
        *f = (*f).max(vt);
    }

    /// The slowest thread's final frontier (the node's region end time).
    pub fn final_frontier(&self) -> u64 {
        *self.finals.lock()
    }
}

// ----------------------------------------------------------------------
// Team entry
// ----------------------------------------------------------------------

/// Multi-threaded process entry for one node's parallel region: spawn
/// `cfg.threads_per_node - 1` sibling threads sharing `t`'s DSM process
/// and run `f(handle, team, local_tid)` on every local thread (the
/// caller is local thread 0). Returns after all local threads finish,
/// with the node clock raised to the slowest thread's frontier — the
/// caller then runs the node's share of the region join (e.g. the DSM
/// barrier) at the correct instant.
pub fn run_team(t: &mut Tmk, cfg: SmpConfig, f: impl Fn(&mut Tmk, &Team, usize) + Sync) {
    let tpn = cfg.threads_per_node;
    let team = Team::new(cfg);
    if tpn == 1 {
        // Degenerate team: no lanes, no gate, no extra threads.
        f(t, &team, 0);
        return;
    }
    t.smp_enter();
    t.metrics().team_forks.inc();
    let fork_t0 = t.trace_now();
    t.lane_advance(cfg.fork_thread_ns * (tpn as u64 - 1));
    t.trace_span(
        tmk::EventKind::TeamFork,
        fork_t0,
        t.trace_now(),
        tpn as u64,
        0,
    );
    let siblings: Vec<Tmk> = (1..tpn).map(|_| t.smp_fork()).collect();
    std::thread::scope(|s| {
        for (i, mut st) in siblings.into_iter().enumerate() {
            let team = &team;
            let f = &f;
            s.spawn(move || {
                st.rearm_meter();
                let r = catch_unwind(AssertUnwindSafe(|| f(&mut st, team, i + 1)));
                match r {
                    Ok(()) => team.report_final(st.smp_finish()),
                    Err(e) => {
                        team.poison();
                        resume_unwind(e);
                    }
                }
            });
        }
        // Host-side thread-spawn CPU is a simulation artifact — its
        // modeled cost is the fork_thread_ns charge above. Re-arm so it
        // is not billed as application compute.
        t.rearm_meter();
        let r = catch_unwind(AssertUnwindSafe(|| f(t, &team, 0)));
        if let Err(e) = r {
            team.poison();
            resume_unwind(e);
        }
    });
    team.report_final(t.smp_finish());
    t.smp_absorb(team.final_frontier());
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmk::{run_system, TmkConfig};

    #[test]
    fn team_barrier_combines_frontiers() {
        let team = Team::new(SmpConfig::fast_test(3));
        let team = Arc::new(team);
        let mut hs = Vec::new();
        for lt in 1..3usize {
            let team = team.clone();
            hs.push(std::thread::spawn(move || {
                match team.gather(lt, 100 * lt as u64) {
                    Arrival::Departed(vt) => vt,
                    Arrival::Representative(_) => panic!("non-zero tid became rep"),
                }
            }));
        }
        let combined = match team.gather(0, 50) {
            Arrival::Representative(vt) => vt,
            Arrival::Departed(_) => panic!("tid 0 must be the representative"),
        };
        assert_eq!(combined, 200, "max of 50, 100, 200");
        team.release(combined + 7);
        for h in hs {
            assert_eq!(h.join().unwrap(), 207);
        }
    }

    #[test]
    fn combine_cell_hands_total_to_last_arriver() {
        let team = Team::new(SmpConfig::fast_test(3));
        assert_eq!(team.combine(9, 10u64, |a, b| a + b), None);
        assert_eq!(team.combine(9, 20u64, |a, b| a + b), None);
        assert_eq!(team.combine(9, 12u64, |a, b| a + b), Some(42));
        // The cell reset: a second reduction at the same site works.
        assert_eq!(team.combine(9, 1u64, |a, b| a + b), None);
        assert_eq!(team.combine(9, 2u64, |a, b| a + b), None);
        assert_eq!(team.combine(9, 3u64, |a, b| a + b), Some(6));
    }

    #[test]
    fn idle_last_thread_becomes_agent() {
        let team = Team::new(SmpConfig::fast_test(2));
        let g = team.task_gen();
        // A push after the sweep sample forces a retry.
        team.task_wake();
        assert_eq!(team.task_enter_idle(g), IdleOutcome::Retry);
        // Clean sweeps: first idler parks (exercised cross-thread below),
        // the last becomes the agent.
        let team = Arc::new(team);
        let t2 = team.clone();
        let sleeper = std::thread::spawn(move || {
            let g = t2.task_gen();
            t2.task_enter_idle(g)
        });
        // Wait until the sleeper is parked.
        while !team.task_has_idle() {
            std::thread::yield_now();
        }
        let g = team.task_gen();
        assert_eq!(team.task_enter_idle(g), IdleOutcome::Agent);
        team.task_done();
        assert_eq!(sleeper.join().unwrap(), IdleOutcome::Done);
    }

    #[test]
    fn run_team_shares_the_dsm_process() {
        // 2 nodes × 3 threads: every local thread writes its global slot
        // through the shared DSM process; intra-node writes are
        // message-free (no extra traffic vs what 2 single-threaded nodes
        // would pay for the same pages).
        let out = run_system(TmkConfig::fast_test(2), |t| {
            let v = t.malloc_vec::<u64>(6);
            t.parallel(0, move |t| {
                let node = t.proc_id();
                run_team(t, SmpConfig::fast_test(3), |t, _team, lt| {
                    let gid = node * 3 + lt;
                    t.write(&v, gid, gid as u64 + 1);
                });
            });
            t.read_slice(&v, 0..6)
        });
        assert_eq!(out.result, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn lanes_overlap_compute_within_a_node() {
        // One node, 4 local threads, each burning real CPU: the node's
        // final virtual time must be far below the serial sum of the
        // threads' compute (parallel lanes), while a single-threaded run
        // of the same total work pays it all.
        let work = |t: &mut Tmk| {
            let mut x = 0u64;
            for i in 0..3_000_000u64 {
                x = x.wrapping_add(i ^ (i << 7));
            }
            std::hint::black_box(x);
            t.now_ns()
        };
        let par = run_system(TmkConfig::fast_test(1), move |t| {
            t.parallel(0, move |t| {
                run_team(t, SmpConfig::fast_test(4), |t, _team, _lt| {
                    work(t);
                });
            });
            t.now_ns()
        });
        let seq = run_system(TmkConfig::fast_test(1), move |t| {
            t.parallel(0, move |t| {
                for _ in 0..4 {
                    work(t);
                }
            });
            t.now_ns()
        });
        assert!(
            par.result * 2 < seq.result,
            "4 parallel lanes ({} ns) must beat 4 serial runs ({} ns)",
            par.result,
            seq.result
        );
    }
}
