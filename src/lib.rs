//! # openmp-now — OpenMP on Networks of Workstations
//!
//! Facade crate for the reproduction of Lu, Hu & Zwaenepoel,
//! *"OpenMP on Networks of Workstations"* (SC'98). See the README for the
//! architecture and DESIGN.md for the system inventory.
//!
//! * [`nomp`] — the OpenMP runtime + directive macros (the paper's
//!   contribution), two-level on SMP-cluster topologies
//! * [`smp`] — the SMP node subsystem: thread teams sharing one DSM
//!   process (`nodes × threads_per_node` topologies)
//! * [`tmk`] — the TreadMarks-style software DSM it compiles to
//! * [`nowmpi`] — the MPI baseline
//! * [`now_net`] — the simulated workstation network + virtual time
//! * [`now_apps`] — the five evaluation applications
//! * [`now_service`] — the cluster-pool job service: a pool of warm
//!   clusters behind an async front door with weighted fair-share
//!   scheduling, admission control and graceful drain
//!
//! The one public way in is the [`Cluster`](nomp::Cluster) session API:
//! build a cluster once, run a stream of jobs — Rust closures and
//! compiled `.omp` programs alike — on the same warm simulated network:
//!
//! ```
//! use openmp_now::prelude::*;
//!
//! # fn main() -> Result<(), NowError> {
//! let mut cluster = Cluster::builder().nodes(2).fast_test().build()?;
//!
//! // A handwritten region closure...
//! let report = cluster.run(|omp: &mut Env| {
//!     let v = omp.malloc_vec::<u64>(100);
//!     omp.parallel_for(Schedule::Static, 0..100, move |t, i| {
//!         t.write(&v, i, (i * i) as u64);
//!     });
//!     omp.read(&v, 9)
//! })?;
//! assert_eq!(report.result, 81);
//!
//! // ...and a compiled `.omp` program share the warm cluster.
//! let prog = ompc::compile(
//!     "double x; int main() { x = 6 * 7; return 0; }",
//! )?;
//! let omp_report = cluster.run(&prog)?;
//! assert_eq!(omp_report.result.scalars["x"], 42.0);
//! # Ok(()) }
//! ```

pub use {nomp, now_apps, now_net, now_service, nowmpi, ompc, smp, tmk};

/// Common imports for writing OpenMP-on-NOW programs.
pub mod prelude {
    pub use nomp::{
        critical_id, run, Cluster, ClusterBuilder, Diag, Env, Job, MetricsSnapshot, NowError,
        NowProgram, OmpConfig, OmpThread, Profile, RedOp, RunReport, Schedule, SharedScalar,
        SharedVec, ThreadPrivate, Trace, TraceConfig,
    };
    pub use tmk::{RunOutcome, Shareable, Tmk, TmkConfig};

    pub use now_service::{
        JobRequest, JobValue, Rejected, Service, ServiceConfig, ServiceHandle, ServiceReport,
        Ticket,
    };
}

/// Command-line argument parsing for the `omp_runner` example (kept in
/// the library so the CLI surface is unit-testable: malformed flags must
/// produce a clear message, which the runner maps to exit code 2).
pub mod cli {
    use nomp::{Cluster, ClusterBuilder, ClusterLoad, LoadSpec, NowError, Schedule, TraceConfig};

    /// Parsed `omp_runner` arguments.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RunnerArgs {
        /// Simulated workstations.
        pub nodes: usize,
        /// Application threads per workstation.
        pub tpn: usize,
        /// What `schedule(runtime)` resolves to (`--schedule` wins over
        /// the `OMP_SCHEDULE` environment variable).
        pub schedule: Option<Schedule>,
        /// Per-node speed factors (`--speeds`), `None` = uniform.
        pub speeds: Option<Vec<f64>>,
        /// Background-load trace (`--load`), `None` = dedicated machines.
        pub load: Option<LoadSpec>,
        /// Seed driving stochastic traces (`--load-seed`).
        pub load_seed: u64,
        /// Run every program this many times on the warm cluster
        /// (`--repeat`; default 1).
        pub repeat: usize,
        /// Write each job's Chrome-trace JSON here (`--trace`); arms
        /// event recording on the cluster. With `--repeat`/multiple
        /// files, the job index is suffixed before the extension.
        pub trace: Option<String>,
        /// Print each job's per-node profile (`--profile`); arms event
        /// recording on the cluster.
        pub profile: bool,
        /// Write the cluster's cumulative lifetime metrics here in
        /// Prometheus text exposition format after all jobs finish
        /// (`--metrics`). Metrics recording is always on; this only
        /// controls export.
        pub metrics: Option<String>,
        /// Write the same cumulative metrics snapshot as JSON
        /// (`--metrics-json`).
        pub metrics_json: Option<String>,
        /// Statically analyze the programs instead of running them
        /// (`--analyze`); findings print one per line.
        pub analyze: bool,
        /// Render analyzer findings as a JSON array (`--analyze=json`;
        /// implies `analyze`).
        pub analyze_json: bool,
        /// Promote race-class findings (`OMP201`..`OMP204`) to errors
        /// (`--deny-races`; implies `analyze` when no run is requested —
        /// the runner exits 1 if any program has a denied finding).
        pub deny_races: bool,
        /// Run programs under the dynamic happens-before race checker
        /// (`--race-check`); concrete racing pairs print after each run.
        pub race_check: bool,
        /// `.omp` files to run (empty = the bundled examples).
        pub files: Vec<String>,
    }

    impl Default for RunnerArgs {
        fn default() -> Self {
            RunnerArgs {
                nodes: 4,
                tpn: 1,
                schedule: None,
                speeds: None,
                load: None,
                load_seed: 0,
                repeat: 1,
                trace: None,
                profile: false,
                metrics: None,
                metrics_json: None,
                analyze: false,
                analyze_json: false,
                deny_races: false,
                race_check: false,
                files: Vec::new(),
            }
        }
    }

    fn value_of<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a str, String> {
        it.next()
            .map(|s| s.as_str())
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    /// Consume and validate an output-file value for `flag`: must exist,
    /// not look like another flag, and not name a directory.
    fn out_path<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<String, String> {
        let v = value_of(it, flag)?;
        if v.is_empty() || v.starts_with("--") {
            return Err(format!("{flag} expects an output file path, got `{v}`"));
        }
        if v.ends_with('/') || v.ends_with(std::path::MAIN_SEPARATOR) {
            return Err(format!("{flag} expects a file path, `{v}` is a directory"));
        }
        Ok(v.to_string())
    }

    impl RunnerArgs {
        /// Parse an argument list (without the program name). Malformed
        /// flags yield a one-line message for the caller to print before
        /// exiting with status 2.
        pub fn parse(args: &[String]) -> Result<RunnerArgs, String> {
            let mut a = RunnerArgs::default();
            let mut it = args.iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--nodes" => {
                        let v = value_of(&mut it, "--nodes")?;
                        a.nodes = v
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| format!("--nodes expects N >= 1, got `{v}`"))?;
                    }
                    "--tpn" => {
                        let v = value_of(&mut it, "--tpn")?;
                        a.tpn = v
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| format!("--tpn expects T >= 1, got `{v}`"))?;
                    }
                    "--schedule" => {
                        let v = value_of(&mut it, "--schedule")?;
                        a.schedule = Some(
                            Schedule::parse(v).map_err(|e| format!("invalid --schedule: {e}"))?,
                        );
                    }
                    "--speeds" => {
                        let v = value_of(&mut it, "--speeds")?;
                        a.speeds = Some(
                            hetero::parse_speeds(v)
                                .map_err(|e| format!("invalid --speeds: {e}"))?,
                        );
                    }
                    "--load" => {
                        let v = value_of(&mut it, "--load")?;
                        a.load =
                            Some(LoadSpec::parse(v).map_err(|e| format!("invalid --load: {e}"))?);
                    }
                    "--load-seed" => {
                        let v = value_of(&mut it, "--load-seed")?;
                        a.load_seed = v.parse().map_err(|_| {
                            format!("--load-seed expects an unsigned integer, got `{v}`")
                        })?;
                    }
                    "--repeat" => {
                        let v = value_of(&mut it, "--repeat")?;
                        a.repeat = v
                            .parse()
                            .ok()
                            .filter(|&n: &usize| n >= 1)
                            .ok_or_else(|| format!("--repeat expects N >= 1, got `{v}`"))?;
                    }
                    "--trace" => {
                        a.trace = Some(out_path(&mut it, "--trace")?);
                    }
                    "--profile" => a.profile = true,
                    "--metrics" => {
                        a.metrics = Some(out_path(&mut it, "--metrics")?);
                    }
                    "--metrics-json" => {
                        a.metrics_json = Some(out_path(&mut it, "--metrics-json")?);
                    }
                    "--analyze" => a.analyze = true,
                    "--analyze=json" => {
                        a.analyze = true;
                        a.analyze_json = true;
                    }
                    f if f.starts_with("--analyze=") => {
                        return Err(format!(
                            "--analyze accepts only `json` as a value, got `{}`",
                            &f["--analyze=".len()..]
                        ));
                    }
                    "--deny-races" => a.deny_races = true,
                    "--race-check" => a.race_check = true,
                    f if f.starts_with("--") => {
                        return Err(format!(
                            "unknown flag `{f}` (expected --nodes, --tpn, --schedule, \
                             --speeds, --load, --load-seed, --repeat, --trace, \
                             --profile, --metrics, --metrics-json, --analyze[=json], \
                             --deny-races, --race-check, or a .omp file)"
                        ));
                    }
                    f => a.files.push(f.to_string()),
                }
            }
            if let Some(s) = &a.speeds {
                if s.len() != a.nodes {
                    return Err(format!(
                        "--speeds lists {} factors for {} nodes",
                        s.len(),
                        a.nodes
                    ));
                }
            }
            Ok(a)
        }

        /// The heterogeneity model these arguments describe.
        pub fn cluster_load(&self) -> Result<ClusterLoad, String> {
            let traces = match self.load.clone() {
                None => Vec::new(),
                Some(spec) => spec
                    .into_traces(self.nodes)
                    .map_err(|e| format!("invalid --load: {e}"))?,
            };
            let load = ClusterLoad {
                speeds: self.speeds.clone().unwrap_or_default(),
                traces,
                seed: self.load_seed,
            };
            load.validate()?;
            Ok(load)
        }

        /// Whether these arguments arm event recording on the cluster
        /// (`--trace` or `--profile`).
        pub fn tracing(&self) -> bool {
            self.trace.is_some() || self.profile
        }

        /// The Chrome-trace output path for job number `job`: the
        /// `--trace` path itself when the invocation runs a single job,
        /// otherwise the path with `.job<N>` spliced in before the
        /// extension so repetitions don't overwrite each other.
        pub fn trace_path(&self, job: usize, multi: bool) -> Option<String> {
            let base = self.trace.as_deref()?;
            if !multi {
                return Some(base.to_string());
            }
            Some(match base.rfind('.') {
                Some(dot) if dot > 0 && !base[dot..].contains('/') => {
                    format!("{}.job{job}{}", &base[..dot], &base[dot..])
                }
                _ => format!("{base}.job{job}"),
            })
        }

        /// The [`ClusterBuilder`] these arguments describe (paper cost
        /// model, as the runner always used). `schedule` should already
        /// have the `OMP_SCHEDULE` fallback applied by the caller.
        pub fn cluster_builder(&self) -> ClusterBuilder {
            let mut b = Cluster::builder()
                .nodes(self.nodes)
                .threads_per_node(self.tpn)
                .load_seed(self.load_seed);
            if self.tracing() {
                b = b.trace(TraceConfig::default());
            }
            if let Some(s) = &self.speeds {
                b = b.speeds(s.clone());
            }
            if let Some(l) = &self.load {
                b = b.load(l.clone());
            }
            if let Some(s) = self.schedule {
                b = b.runtime_schedule(s);
            }
            b
        }

        /// Bring up the warm cluster these arguments describe — the one
        /// cluster every file × repetition of a runner invocation reuses.
        pub fn cluster(&self) -> Result<Cluster, NowError> {
            self.cluster_builder().build()
        }
    }
}
