//! # openmp-now — OpenMP on Networks of Workstations
//!
//! Facade crate for the reproduction of Lu, Hu & Zwaenepoel,
//! *"OpenMP on Networks of Workstations"* (SC'98). See the README for the
//! architecture and DESIGN.md for the system inventory.
//!
//! * [`nomp`] — the OpenMP runtime + directive macros (the paper's
//!   contribution), two-level on SMP-cluster topologies
//! * [`smp`] — the SMP node subsystem: thread teams sharing one DSM
//!   process (`nodes × threads_per_node` topologies)
//! * [`tmk`] — the TreadMarks-style software DSM it compiles to
//! * [`nowmpi`] — the MPI baseline
//! * [`now_net`] — the simulated workstation network + virtual time
//! * [`now_apps`] — the five evaluation applications
//!
//! ```
//! use openmp_now::prelude::*;
//!
//! let out = nomp::run(OmpConfig::fast_test(2), |omp| {
//!     let v = omp.malloc_vec::<u64>(100);
//!     omp.parallel_for(Schedule::Static, 0..100, move |t, i| {
//!         t.write(&v, i, (i * i) as u64);
//!     });
//!     omp.read(&v, 9)
//! });
//! assert_eq!(out.result, 81);
//! ```

pub use {nomp, now_apps, now_net, nowmpi, smp, tmk};

/// Common imports for writing OpenMP-on-NOW programs.
pub mod prelude {
    pub use nomp::{
        critical_id, run, Env, OmpConfig, OmpThread, RedOp, Schedule, SharedScalar, SharedVec,
        ThreadPrivate,
    };
    pub use tmk::{RunOutcome, Shareable, Tmk, TmkConfig};
}
