//! The unified `Cluster` session API, end to end: the typed `NowError`
//! boundary (every builder validation failure is a variant, and the
//! builder never panics on junk input), warm-cluster reuse (same-seed
//! job streams are bit-identical and per-job stats are exact deltas, on
//! `n×1` and SMP topologies), and mixed job streams (a Rust closure job
//! followed by a compiled `.omp` job on the *same* cluster instance).

use nomp::{Cluster, ClusterBuilder, Env, Job, NowError, OmpConfig, RunReport, Schedule};
use proptest::prelude::*;

// ----------------------------------------------------------------------
// NowError: every builder validation failure is a typed variant.
// ----------------------------------------------------------------------

/// One rejection case: a misconfigured builder plus the variant check.
type RejectionCase = (ClusterBuilder, fn(&NowError) -> bool);

#[test]
fn every_builder_validation_failure_has_a_variant() {
    let cases: Vec<RejectionCase> = vec![
        (Cluster::builder().nodes(0), |e| {
            matches!(e, NowError::ZeroNodes)
        }),
        (Cluster::builder().nodes(2).threads_per_node(0), |e| {
            matches!(e, NowError::ZeroThreadsPerNode)
        }),
        (Cluster::builder().nodes(100_000), |e| {
            matches!(e, NowError::TopologyTooLarge { .. })
        }),
        (Cluster::builder().nodes(40).threads_per_node(40), |e| {
            matches!(e, NowError::TopologyTooLarge { .. })
        }),
        (Cluster::builder().nodes(3).speeds(vec![1.0]), |e| {
            matches!(
                e,
                NowError::SpeedsLength {
                    expected: 3,
                    got: 1
                }
            )
        }),
        (Cluster::builder().nodes(2).speeds(vec![1.0, 0.0]), |e| {
            matches!(e, NowError::InvalidLoad(_))
        }),
        (
            Cluster::builder().nodes(2).speeds(vec![f64::NAN, 1.0]),
            |e| matches!(e, NowError::InvalidLoad(_)),
        ),
        (Cluster::builder().nodes(2).load_str("tsunami:1/1x2"), |e| {
            matches!(e, NowError::InvalidLoad(_))
        }),
        (Cluster::builder().nodes(2).load_str("step:9@1x2"), |e| {
            matches!(e, NowError::InvalidLoad(_))
        }),
        (Cluster::builder().runtime_schedule_str("fractal,3"), |e| {
            matches!(e, NowError::InvalidSchedule(_))
        }),
        (Cluster::builder().runtime_schedule_str("affinity,2"), |e| {
            matches!(e, NowError::InvalidSchedule(_))
        }),
        (Cluster::builder().nodes(2).link_latency(vec![1.0]), |e| {
            matches!(e, NowError::InvalidLinkLatency(_))
        }),
        (
            Cluster::builder().nodes(2).link_latency(vec![1.0, 0.5]),
            |e| matches!(e, NowError::InvalidLinkLatency(_)),
        ),
        (
            Cluster::builder()
                .nodes(2)
                .link_latency(vec![1.0, f64::INFINITY]),
            |e| matches!(e, NowError::InvalidLinkLatency(_)),
        ),
        (
            Cluster::builder().nodes(2).tmk(|t| t.page_size = 100),
            |e| matches!(e, NowError::InvalidConfig(_)),
        ),
    ];
    for (i, (builder, matches_expected)) in cases.into_iter().enumerate() {
        let err = match builder.validate() {
            Err(e) => e,
            Ok(_) => panic!("case {i}: must be rejected"),
        };
        assert!(
            matches_expected(&err),
            "case {i}: wrong variant {err:?} ({err})"
        );
        assert!(!err.to_string().is_empty(), "case {i}: silent error");
    }
}

#[test]
fn valid_builders_pass_validation() {
    let cfg = Cluster::builder()
        .nodes(4)
        .threads_per_node(2)
        .fast_test()
        .speeds(vec![1.0, 0.5, 1.0, 0.8])
        .load_str("burst:40/10x3")
        .load_seed(7)
        .link_latency(vec![1.0, 2.0, 1.0, 1.0])
        .runtime_schedule_str("adaptive,8")
        .default_dynamic_chunk(32)
        .validate()
        .expect("valid configuration");
    assert_eq!(cfg.tmk.nodes(), 4);
    assert_eq!(cfg.threads_per_node(), 2);
    assert_eq!(cfg.runtime_schedule, Schedule::Adaptive(8));
    assert_eq!(cfg.default_dynamic_chunk, 32);
    assert!(!cfg.tmk.net.load.is_uniform());
}

// Builder validation is pure: junk never panics, it returns Err (or a
// config whose topology stays within the simulator's bounds).
proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]
    #[test]
    fn builder_never_panics_on_arbitrary_inputs(
        nodes in 0usize..100_000,
        tpn in 0usize..10_000,
        speeds in proptest::collection::vec(proptest::num::f64::ANY, 0..6),
        lats in proptest::collection::vec(proptest::num::f64::ANY, 0..6),
        seed in 0u64..u64::MAX,
        sched_pick in 0usize..6,
        load_pick in 0usize..6,
    ) {
        let sched = ["static", "fractal,3", "dynamic,999999999999", "", ",,", "runtime,2"]
            [sched_pick];
        let load = ["none", "step:1@5x2", "tsunami:1", "burst:40/10x3", "step:@x", "phase:0/0x0"]
            [load_pick];
        let result = Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .fast_test()
            .speeds(speeds)
            .link_latency(lats)
            .load_str(load)
            .load_seed(seed)
            .runtime_schedule_str(sched)
            .validate();
        if let Ok(cfg) = result {
            prop_assert!(cfg.tmk.nodes() >= 1);
            prop_assert!(cfg.threads() <= 1024, "topology bound enforced");
        }
    }
}

// ----------------------------------------------------------------------
// Warm reuse: same job run twice is bit-identical, on 4×1 and 2×2.
// ----------------------------------------------------------------------

/// Deterministic cluster: measured compute and per-message CPU costs are
/// zero, so every timestamp (and so every grant order) is a pure
/// function of the modeled protocol costs.
fn det_builder(nodes: usize, tpn: usize) -> ClusterBuilder {
    Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .fast_test()
        .tmk(|t| {
            t.net.compute_scale = 0.0;
            t.net.send_overhead_ns = 0;
            t.net.handler_ns = 0;
            t.net.local_delivery_ns = 0;
        })
}

/// Barrier-structured job with deterministic traffic (the pattern the
/// heterogeneity determinism tests established): every thread
/// push-writes a page-disjoint slab, the master reads it all back.
fn det_job() -> Job<Vec<u64>> {
    Job::new(|omp: &mut Env<'_>| {
        const SLAB: usize = 512;
        let nthreads = omp.num_threads();
        let data = omp.malloc_vec::<u64>(nthreads * SLAB);
        omp.parallel(move |t| {
            let me = t.thread_num();
            let vals: Vec<u64> = (0..SLAB).map(|i| (me * SLAB + i) as u64).collect();
            t.write_slice_push(&data, me * SLAB, &vals);
        });
        omp.read_slice(&data, 0..nthreads * SLAB)
    })
}

fn assert_reports_identical(name: &str, a: &RunReport<Vec<u64>>, b: &RunReport<Vec<u64>>) {
    assert_eq!(a.result, b.result, "{name}: results diverged");
    assert_eq!(a.dsm, b.dsm, "{name}: TmkStats must be exact deltas");
    assert_eq!(a.net, b.net, "{name}: traffic must be exact deltas");
    assert_eq!(a.vt_ns, b.vt_ns, "{name}: virtual times diverged");
}

#[test]
fn same_job_twice_on_one_cluster_is_bit_identical() {
    for (nodes, tpn) in [(4usize, 1usize), (2, 2)] {
        let name = format!("{nodes}x{tpn}");
        let mut cluster = det_builder(nodes, tpn).build().expect("valid cluster");
        let first = cluster.run(det_job()).expect("job 1");
        let second = cluster.run(det_job()).expect("job 2");
        let expect: Vec<u64> = (0..nodes * tpn * 512).map(|i| i as u64).collect();
        assert_eq!(first.result, expect, "{name}: wrong data");
        assert_reports_identical(&name, &first, &second);
        assert_eq!(first.job, 0);
        assert_eq!(second.job, 1);

        // Job N+1 on the warm cluster equals a cold one-shot cluster:
        // the reset leaves no residue (no spin-up is re-paid, and no
        // state survives).
        let cold = det_builder(nodes, tpn)
            .build()
            .expect("valid cluster")
            .run(det_job())
            .expect("cold job");
        assert_reports_identical(&format!("{name} warm-vs-cold"), &second, &cold);
    }
}

#[test]
fn shim_run_equals_cluster_session_path() {
    // `nomp::run` is a one-job shim over the same session machinery.
    let mut cfg = OmpConfig::fast_test(3);
    cfg.tmk.net.compute_scale = 0.0;
    cfg.tmk.net.send_overhead_ns = 0;
    cfg.tmk.net.handler_ns = 0;
    cfg.tmk.net.local_delivery_ns = 0;
    let via_shim = nomp::run(cfg.clone(), |omp| {
        let v = omp.malloc_vec::<u64>(3);
        omp.parallel(move |t| {
            let me = t.thread_num();
            t.write(&v, me, 7 * me as u64);
        });
        omp.read_slice(&v, 0..3)
    });
    let via_cluster = Cluster::from_config(cfg)
        .run(|omp: &mut Env<'_>| {
            let v = omp.malloc_vec::<u64>(3);
            omp.parallel(move |t| {
                let me = t.thread_num();
                t.write(&v, me, 7 * me as u64);
            });
            omp.read_slice(&v, 0..3)
        })
        .expect("cluster job");
    assert_eq!(via_shim.result, via_cluster.result);
    assert_eq!(via_shim.dsm, via_cluster.dsm);
    assert_eq!(via_shim.net.total_msgs(), via_cluster.msgs());
}

// ----------------------------------------------------------------------
// Mixed job streams: closures and `.omp` programs share one cluster.
// ----------------------------------------------------------------------

#[test]
fn closure_job_then_omp_job_share_the_cluster() {
    for (nodes, tpn) in [(4usize, 1usize), (2, 2)] {
        let mut cluster = Cluster::builder()
            .nodes(nodes)
            .threads_per_node(tpn)
            .fast_test()
            .build()
            .expect("valid cluster");

        // Job 0: a handwritten closure region.
        let closure_report = cluster
            .run(|omp: &mut Env<'_>| {
                let n = 1000usize;
                let v = omp.malloc_vec::<f64>(n);
                omp.parallel_for(Schedule::Static, 0..n, move |t, i| {
                    t.write(&v, i, i as f64);
                });
                omp.read(&v, 999)
            })
            .expect("closure job");
        assert_eq!(closure_report.result, 999.0, "{nodes}x{tpn}");
        assert_eq!(closure_report.job, 0);

        // Job 1: a compiled `.omp` program on the *same* cluster.
        let prog = ompc::compile(
            r#"
            double pi;
            int main() {
                int n = 1000;
                double step = 1.0 / n;
                #pragma omp parallel for reduction(+:pi) schedule(static)
                for (int i = 0; i < n; i = i + 1) {
                    double x = (i + 0.5) * step;
                    pi = pi + 4.0 / (1.0 + x * x);
                }
                pi = pi * step;
                return 0;
            }
            "#,
        )
        .expect("pi program compiles");
        let omp_report = cluster.run(&prog).expect("omp job");
        assert!(
            (omp_report.result.scalars["pi"] - std::f64::consts::PI).abs() < 1e-5,
            "{nodes}x{tpn}: translated pi diverged"
        );
        assert_eq!(omp_report.job, 1);
        assert_eq!(omp_report.topology(), format!("{nodes}x{tpn}"));

        // Job 2: the closure shape again — the `.omp` job left no
        // residue (fresh allocations, fresh counters).
        let again = cluster
            .run(|omp: &mut Env<'_>| {
                let v = omp.malloc_vec::<u64>(8);
                omp.parallel(move |t| {
                    if t.thread_num() == 0 {
                        t.write(&v, 0, 11);
                    }
                });
                omp.read(&v, 0)
            })
            .expect("second closure job");
        assert_eq!(again.result, 11);
        assert_eq!(again.job, 2);
        assert_eq!(cluster.jobs_run(), 3);
        cluster.shutdown();
    }
}

#[test]
fn compile_errors_nest_in_the_unified_error_type() {
    // The one-result-type pipeline: compile (Diag ⇒ NowError::Compile)
    // then run, composed with `?`.
    fn pipeline(src: &str) -> Result<RunReport<ompc::ProgramOutput>, NowError> {
        let mut cluster = Cluster::builder().nodes(2).fast_test().build()?;
        let prog = ompc::compile(src)?;
        cluster.run(prog)
    }
    let ok = pipeline("int main() { return 6 * 7; }").expect("valid program");
    assert_eq!(ok.result.ret, 42.0);
    let err = pipeline("int main() { return 1 +; }").expect_err("syntax error");
    match &err {
        NowError::Compile(d) => assert!(d.span.line >= 1, "spanned diagnostic"),
        other => panic!("expected Compile variant, got {other:?}"),
    }
    assert!(err.to_string().contains("compile error"), "{err}");
}
