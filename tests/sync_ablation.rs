//! Message-count properties of the synchronization primitives — the
//! quantitative core of the paper's §3 argument.

use tmk::TmkConfig;

/// Count network messages attributable to one operation by running a
/// region that performs it `reps` times on top of a baseline region that
/// does not, and differencing.
fn marginal_msgs(
    nodes: usize,
    reps: u64,
    op: impl Fn(&mut tmk::Tmk) + Send + Sync + Clone + 'static,
) -> f64 {
    let run = |k: u64, op: Box<dyn Fn(&mut tmk::Tmk) + Send + Sync>| -> u64 {
        let out = tmk::run_system(TmkConfig::fast_test(nodes), move |t| {
            t.parallel(0, move |t| {
                if t.proc_id() == 0 {
                    for _ in 0..k {
                        op(t);
                    }
                }
            });
        });
        out.net.total_msgs()
    };
    let o1 = op.clone();
    let base = run(0, Box::new(move |t| o1(t)));
    let with = run(reps, Box::new(move |t| op(t)));
    (with - base) as f64 / reps as f64
}

#[test]
fn flush_costs_exactly_2_n_minus_1_messages() {
    for nodes in [2usize, 4, 8] {
        let per = marginal_msgs(nodes, 10, |t| t.flush());
        // A flush with nothing new to report is pure synchronization:
        // one notice + one ack per peer (§3.2.4 of the paper).
        assert_eq!(per, (2 * (nodes - 1)) as f64, "flush at {nodes} nodes");
    }
}

#[test]
fn semaphore_ops_cost_two_messages_regardless_of_nodes() {
    for nodes in [2usize, 4, 8] {
        // Signal then wait on a semaphore managed by another node:
        // 2 messages each (request + ack/grant), independent of n.
        let per = marginal_msgs(nodes, 10, |t| {
            t.sema_signal(1); // manager = node 1
            t.sema_wait(1);
        });
        assert_eq!(per, 4.0, "sema signal+wait at {nodes} nodes");
    }
}

#[test]
fn remote_lock_acquire_release_costs_three_messages() {
    for nodes in [2usize, 4] {
        let per = marginal_msgs(nodes, 10, |t| {
            t.lock_acquire(1); // managed by node 1; we are node 0
            t.lock_release(1);
        });
        assert_eq!(per, 3.0, "lock acquire+release at {nodes} nodes");
    }
}

#[test]
fn manager_local_lock_is_free() {
    // Node 0 acquiring a lock it manages itself: loopback only.
    let per = marginal_msgs(4, 10, |t| {
        t.lock_acquire(0); // 0 % 4 == node 0 == the caller
        t.lock_release(0);
    });
    assert_eq!(per, 0.0, "self-managed lock must not touch the wire");
}

#[test]
fn barrier_costs_two_messages_per_remote_node() {
    for nodes in [2usize, 4, 8] {
        let out = tmk::run_system(TmkConfig::fast_test(nodes), move |t| {
            t.parallel(0, move |t| {
                for _ in 0..10 {
                    t.barrier();
                }
            });
        });
        // Arrival + departure per non-manager node per episode; plus the
        // fixed fork/join/teardown traffic. Measure marginal per barrier.
        let out2 = tmk::run_system(TmkConfig::fast_test(nodes), move |t| {
            t.parallel(0, move |t| {
                for _ in 0..20 {
                    t.barrier();
                }
            });
        });
        let per = (out2.net.total_msgs() - out.net.total_msgs()) as f64 / 10.0;
        assert_eq!(per, (2 * (nodes - 1)) as f64, "barrier at {nodes} nodes");
    }
}

#[test]
fn condvar_wakeup_is_constant_messages() {
    // cond_signal + the waiter's re-acquire: a small constant, not Θ(n).
    for nodes in [2usize, 4, 8] {
        let out = tmk::run_system(TmkConfig::fast_test(nodes), move |tmk| {
            let flag = tmk.malloc_scalar::<u32>(0);
            tmk.parallel(0, move |t| {
                if t.proc_id() == 1 {
                    t.lock_acquire(3);
                    while flag.get(t) == 0 {
                        t.cond_wait(3, 0);
                    }
                    t.lock_release(3);
                } else if t.proc_id() == 0 {
                    t.lock_acquire(3);
                    flag.set(t, 1);
                    t.cond_signal(3, 0);
                    t.lock_release(3);
                }
            });
        });
        // Whole program traffic stays small and roughly flat in n (fork
        // and barriers scale with n; the wakeup itself does not).
        let msgs = out.net.total_msgs();
        assert!(
            msgs < 40 + 6 * nodes as u64,
            "condvar wakeup traffic blew up at {nodes} nodes: {msgs}"
        );
    }
}
