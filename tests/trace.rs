//! Observability: event recording must be invisible to the simulation,
//! per-job profiles must account for every virtual nanosecond, emitted
//! traces must respect causality, and the Chrome trace-event export must
//! validate with one track per node and thread lane.
//!
//! What "invisible" means here: recording only *reads* clocks — it never
//! advances virtual time, takes no modeled CPU, and sends no messages.
//! Results, protocol statistics, and traffic are therefore bit-identical
//! with tracing on or off wherever the simulation itself is
//! deterministic. (The compute meter charges measured *host* time as
//! virtual compute, so timing-sensitive constructs — lock-grant order
//! under contention, dynamic chunk claims — vary run to run with or
//! without tracing; the identity tests below use workloads whose
//! protocol behavior does not depend on host timing, and the
//! timing-sensitive constructs are covered by the intra-run profile and
//! causality tests.)

use openmp_now::cli::RunnerArgs;
use openmp_now::nomp::{
    validate_chrome_json, Cluster, Env, EventKind, RedOp, RunReport, Schedule, TraceConfig,
};
use openmp_now::ompc;

/// A host-timing-independent workload: a static-schedule fill (fork,
/// chunk claims, region barriers), a barrier-only region, and a bulk
/// master read-back (page faults + diff fetches with a fixed pattern).
fn det_workload(omp: &mut Env<'_>) -> f64 {
    let n = 4096;
    let a = omp.malloc_vec::<f64>(n);
    omp.parallel_for_chunks(Schedule::Static, 0..n, move |t, r| {
        t.view_mut(&a, r.clone(), |chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (r.start + k) as f64;
            }
        });
    });
    omp.parallel(|t| t.barrier());
    omp.read_slice(&a, 0..n).iter().sum()
}

/// A richer workload for the intra-run tests: dynamic chunk claims, a
/// named critical section, and a reduction.
fn rich_workload(omp: &mut Env<'_>) -> (f64, u64) {
    let n = 4096;
    let a = omp.malloc_vec::<f64>(n);
    omp.parallel_for_chunks(Schedule::Dynamic(64), 0..n, move |t, r| {
        t.view_mut(&a, r.clone(), |chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (r.start + k) as f64;
            }
        });
    });
    let c = omp.malloc_scalar::<u64>(0);
    omp.parallel(move |t| {
        t.critical_named("ctr", |t| {
            let v = c.get(t);
            c.set(t, v + 1);
        });
    });
    let sum = omp.parallel_reduce(
        Schedule::Static,
        0..n,
        RedOp::Sum,
        move |t, i, acc: &mut f64| {
            *acc += t.read(&a, i);
        },
    );
    (sum, c.get(omp))
}

fn cluster(nodes: usize, tpn: usize, trace: bool) -> Cluster {
    let mut b = Cluster::builder().nodes(nodes).threads_per_node(tpn);
    if trace {
        b = b.trace(TraceConfig::default());
    }
    b.build().expect("valid cluster")
}

fn run_det(nodes: usize, tpn: usize, trace: bool) -> RunReport<f64> {
    cluster(nodes, tpn, trace)
        .run(det_workload)
        .expect("job runs")
}

/// Recording must have zero behavioral impact: results, DSM protocol
/// statistics, and message traffic bit-identical with tracing on or off.
fn assert_bit_identical(nodes: usize, tpn: usize) {
    let off = run_det(nodes, tpn, false);
    let on = run_det(nodes, tpn, true);
    assert_eq!(off.result, on.result, "{nodes}x{tpn}: results diverged");
    assert_eq!(off.dsm, on.dsm, "{nodes}x{tpn}: TmkStats diverged");
    assert_eq!(off.net, on.net, "{nodes}x{tpn}: traffic diverged");
    assert!(off.trace.is_none() && off.profile.is_none());
    let tr = on.trace.as_ref().expect("tracing armed");
    assert_eq!(tr.nodes, nodes);
    assert_eq!(tr.threads_per_node, tpn);
    assert!(tr.event_count() > 0, "an armed trace records events");
    assert!(on.profile.is_some());
}

#[test]
fn tracing_is_bit_invisible_on_4x1() {
    assert_bit_identical(4, 1);
}

#[test]
fn tracing_is_bit_invisible_on_2x2() {
    assert_bit_identical(2, 2);
}

#[test]
fn profile_components_sum_to_total_virtual_time() {
    for (nodes, tpn) in [(4, 1), (2, 2)] {
        let on = cluster(nodes, tpn, true)
            .run(rich_workload)
            .expect("job runs");
        let p = on.profile.as_ref().expect("profile present");
        assert_eq!(p.total_ns, on.vt_ns, "{nodes}x{tpn}: profile total");
        assert_eq!(p.nodes.len(), nodes);
        for np in &p.nodes {
            assert_eq!(
                np.compute_ns + np.barrier_ns + np.protocol_ns + np.idle_ns,
                p.total_ns,
                "{nodes}x{tpn} node {}: breakdown must sum exactly to the \
                 job's virtual time",
                np.node
            );
            assert_eq!(np.dropped, 0, "default capacity must not overflow here");
            assert!(np.events > 0, "every node records events");
        }
        // The workload's dynamic loop shows up in the claim histogram
        // and its lock/barrier traffic in the message timelines.
        assert!(!p.chunk_claims.is_empty(), "{nodes}x{tpn}: chunk claims");
        let total_iters: u64 = p.chunk_claims.iter().map(|c| c.iters).sum();
        assert!(total_iters >= 4096, "{nodes}x{tpn}: claims cover the loop");
        assert!(!p.messages.is_empty(), "{nodes}x{tpn}: message timelines");
    }
}

#[test]
fn per_node_event_order_is_consistent_with_causality() {
    // 4×1 on purpose: each node has exactly one application thread and
    // one service thread, so every per-lane event stream is recorded by
    // a single thread and must be causally ordered.
    let on = cluster(4, 1, true).run(rich_workload).expect("job runs");
    let tr = on.trace.as_ref().unwrap();

    // Every span runs forward, and on an application lane instantaneous
    // markers must appear in non-decreasing virtual time: a thread's
    // clock never runs backwards. (The service lane is exempt: its
    // timeline is deliberately backlog-capped, so the cursor may snap
    // back between independently-timestamped requests.)
    for (node, evs) in tr.events.iter().enumerate() {
        let mut last_instant = 0u64;
        for e in evs {
            assert!(
                e.t1 >= e.t0,
                "node {node}: span {:?} runs backwards",
                e.kind
            );
            // `total_ns` is the master's final clock reading, so it
            // bounds exactly the master lane — service-side handling and
            // other nodes' barrier departures may trail it slightly. The
            // job-boundary reset round (reset_req/sync fan-out, each
            // worker's Reset step and reset_done reply) is deliberately
            // recorded *after* the job-end snapshot so the drained trace
            // shows the full protocol.
            let boundary = e.kind == EventKind::Reset
                || matches!(e.tag, "reset_req" | "reset_done" | "sync_req" | "sync_ack");
            if node == 0 && e.lane == 0 && !boundary {
                assert!(
                    e.t1 <= tr.total_ns,
                    "master lane: {:?} past the job end",
                    e.kind
                );
            }
            if e.t0 == e.t1 && e.lane == 0 {
                assert!(
                    e.t0 >= last_instant,
                    "node {node} lane 0: marker {:?} at {} after one at {last_instant}",
                    e.kind,
                    e.t0,
                );
                last_instant = e.t0;
            }
        }
    }

    // DSM barriers synchronize all nodes: within one epoch, no node can
    // depart (t1) before every node has arrived (t0).
    let mut epochs: std::collections::HashMap<u64, Vec<(u64, u64)>> = Default::default();
    for evs in &tr.events {
        let mut seen = 0u64;
        for e in evs {
            if e.kind == EventKind::BarrierWait {
                assert!(e.a >= seen, "barrier epochs are ordered per node");
                seen = e.a;
                epochs.entry(e.a).or_default().push((e.t0, e.t1));
            }
        }
    }
    assert!(!epochs.is_empty(), "the workload crosses DSM barriers");
    for (epoch, spans) in &epochs {
        assert_eq!(spans.len(), 4, "epoch {epoch}: one entry per node");
        let max_arrive = spans.iter().map(|s| s.0).max().unwrap();
        let min_depart = spans.iter().map(|s| s.1).min().unwrap();
        assert!(
            min_depart >= max_arrive,
            "epoch {epoch}: a node departed ({min_depart}) before the last \
             arrival ({max_arrive})"
        );
    }
}

/// The issue's acceptance bar: `jacobi.omp` on a 4×2 SMP cluster with
/// tracing enabled emits valid Chrome-trace JSON with one track per
/// node and thread lane, and computes bit-identical results to the
/// tracing-off run.
#[test]
fn jacobi_4x2_chrome_export_validates_with_all_tracks() {
    let prog = ompc::compile(include_str!("../examples/omp/jacobi.omp")).expect("jacobi compiles");
    let run = |trace: bool| cluster(4, 2, trace).run(&prog).expect("jacobi runs");
    let off = run(false);
    let on = run(true);
    // Jacobi's residual max-reduction takes DSM locks, whose grant order
    // is host-timing dependent (run-to-run, tracing or not) — the
    // *numerical outputs* are the workload's deterministic surface.
    assert_eq!(off.result.ret, on.result.ret);
    assert_eq!(off.result.printed, on.result.printed);
    assert_eq!(off.result.scalars, on.result.scalars);

    let tr = on.trace.as_ref().expect("tracing armed");
    assert_eq!((tr.nodes, tr.threads_per_node), (4, 2));
    let json = tr.to_chrome_json();
    validate_chrome_json(&json).expect("emitted JSON is schema-valid");
    for node in 0..4 {
        assert!(
            json.contains(&format!("\"args\":{{\"name\":\"node {node}\"}}")),
            "missing process track for node {node}"
        );
        for lane in 0..2 {
            assert!(
                json.contains(&format!(
                    "\"pid\":{node},\"tid\":{lane},\"args\":{{\"name\":\"lane {lane}\"}}"
                )),
                "missing thread track for node {node} lane {lane}"
            );
        }
    }
}

#[test]
fn runner_cli_trace_flags_round_trip() {
    let argv: Vec<String> = ["--nodes", "2", "--trace", "out.json", "--profile", "x.omp"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let a = RunnerArgs::parse(&argv).expect("valid args");
    assert_eq!(a.trace.as_deref(), Some("out.json"));
    assert!(a.profile);
    assert!(a.tracing());
    // Single job: the path verbatim; multi job: a .job<N> suffix before
    // the extension so repetitions don't overwrite each other.
    assert_eq!(a.trace_path(0, false).as_deref(), Some("out.json"));
    assert_eq!(a.trace_path(3, true).as_deref(), Some("out.job3.json"));
    // The builder arms recording on the cluster config.
    let cluster = a.cluster().expect("buildable");
    assert!(cluster.config().tmk.trace.is_some());

    // Defaults: recording off, no paths.
    let d = RunnerArgs::parse(&[]).unwrap();
    assert!(!d.tracing());
    assert_eq!(d.trace_path(0, false), None);
    assert!(d.cluster().expect("buildable").config().tmk.trace.is_none());
}
