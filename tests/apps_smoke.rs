//! Full-cluster (8-node) smoke runs of every application — the exact
//! topology of the paper's evaluation, at test workload sizes.

use nomp::OmpConfig;
use now_apps::{fft3d, qsort, sweep3d, tsp, water};
use nowmpi::MpiConfig;
use tmk::TmkConfig;

fn close(a: f64, b: f64, what: &str) {
    let denom = a.abs().max(b.abs()).max(1e-12);
    assert!(((a - b) / denom).abs() <= 1e-9, "{what}: {a} vs {b}");
}

#[test]
fn all_apps_all_versions_eight_nodes() {
    let n = 8;

    let cfg = fft3d::FftConfig::test();
    let seq = fft3d::run_seq(&cfg, 1.0);
    close(
        fft3d::run_omp(&cfg, OmpConfig::fast_test(n)).checksum,
        seq.checksum,
        "fft omp@8",
    );
    close(
        fft3d::run_tmk(&cfg, TmkConfig::fast_test(n)).checksum,
        seq.checksum,
        "fft tmk@8",
    );
    close(
        fft3d::run_mpi(&cfg, MpiConfig::fast_test(n)).checksum,
        seq.checksum,
        "fft mpi@8",
    );

    let cfg = water::WaterConfig::test();
    let seq = water::run_seq(&cfg, 1.0);
    close(
        water::run_omp(&cfg, OmpConfig::fast_test(n)).checksum,
        seq.checksum,
        "water omp@8",
    );
    close(
        water::run_tmk(&cfg, TmkConfig::fast_test(n)).checksum,
        seq.checksum,
        "water tmk@8",
    );
    close(
        water::run_mpi(&cfg, MpiConfig::fast_test(n)).checksum,
        seq.checksum,
        "water mpi@8",
    );

    let cfg = sweep3d::SweepConfig::test();
    let seq = sweep3d::run_seq(&cfg, 1.0);
    close(
        sweep3d::run_omp(&cfg, OmpConfig::fast_test(n)).checksum,
        seq.checksum,
        "sweep omp@8",
    );
    close(
        sweep3d::run_tmk(&cfg, TmkConfig::fast_test(n)).checksum,
        seq.checksum,
        "sweep tmk@8",
    );
    close(
        sweep3d::run_mpi(&cfg, MpiConfig::fast_test(n)).checksum,
        seq.checksum,
        "sweep mpi@8",
    );

    let cfg = qsort::QsortConfig::test();
    let seq = qsort::run_seq(&cfg, 1.0);
    assert_eq!(
        qsort::run_omp(&cfg, OmpConfig::fast_test(n)).checksum,
        seq.checksum
    );
    assert_eq!(
        qsort::run_tmk(&cfg, TmkConfig::fast_test(n)).checksum,
        seq.checksum
    );
    assert_eq!(
        qsort::run_mpi(&cfg, MpiConfig::fast_test(n)).checksum,
        seq.checksum
    );

    let cfg = tsp::TspConfig::test();
    let seq = tsp::run_seq(&cfg, 1.0);
    assert_eq!(
        tsp::run_omp(&cfg, OmpConfig::fast_test(n)).checksum,
        seq.checksum
    );
    assert_eq!(
        tsp::run_tmk(&cfg, TmkConfig::fast_test(n)).checksum,
        seq.checksum
    );
    assert_eq!(
        tsp::run_mpi(&cfg, MpiConfig::fast_test(n)).checksum,
        seq.checksum
    );
}

#[test]
fn apps_survive_gc_stress() {
    // GC at every barrier with the barrier-heavy apps.
    let mut sys = TmkConfig::fast_test(4);
    sys.gc_every_barrier = true;

    let cfg = water::WaterConfig::test();
    let seq = water::run_seq(&cfg, 1.0);
    close(
        water::run_tmk(&cfg, sys.clone()).checksum,
        seq.checksum,
        "water gc",
    );

    let cfg = fft3d::FftConfig::test();
    let seq = fft3d::run_seq(&cfg, 1.0);
    close(
        fft3d::run_tmk(&cfg, sys.clone()).checksum,
        seq.checksum,
        "fft gc",
    );

    let cfg = sweep3d::SweepConfig::test();
    let seq = sweep3d::run_seq(&cfg, 1.0);
    close(
        sweep3d::run_tmk(&cfg, sys).checksum,
        seq.checksum,
        "sweep gc",
    );
}

#[test]
fn apps_survive_tiny_pages() {
    // 64-byte pages: extreme false sharing through every app structure.
    let sys = TmkConfig::stress_tiny_pages(3);

    let cfg = water::WaterConfig::test();
    let seq = water::run_seq(&cfg, 1.0);
    close(
        water::run_tmk(&cfg, sys.clone()).checksum,
        seq.checksum,
        "water tiny pages",
    );

    let cfg = qsort::QsortConfig::test();
    let seq = qsort::run_seq(&cfg, 1.0);
    assert_eq!(
        qsort::run_tmk(&cfg, sys).checksum,
        seq.checksum,
        "qsort tiny pages"
    );
}

#[test]
fn odd_node_counts_work() {
    // Block partitioning must handle non-dividing node counts (the FFT
    // requires divisibility and checks it; the others must not care).
    for n in [3usize, 5, 7] {
        let cfg = water::WaterConfig::test();
        let seq = water::run_seq(&cfg, 1.0);
        close(
            water::run_tmk(&cfg, TmkConfig::fast_test(n)).checksum,
            seq.checksum,
            "water odd nodes",
        );
        let cfg = sweep3d::SweepConfig::test();
        let seq = sweep3d::run_seq(&cfg, 1.0);
        close(
            sweep3d::run_omp(&cfg, OmpConfig::fast_test(n)).checksum,
            seq.checksum,
            "sweep odd nodes",
        );
    }
}
