//! Property-based consistency testing of the DSM substrate.
//!
//! Random data-race-free shared-memory programs are executed on the
//! simulated cluster and compared against a single-memory reference
//! execution: lazy release consistency must be indistinguishable from
//! sequential consistency for DRF programs.

use proptest::prelude::*;
use tmk::TmkConfig;

/// One random barrier-synchronized round: each node writes a random
/// subset of its own slots (values derived from round + node), then a
/// barrier, then every node checks random slots against the reference.
fn run_random_rounds(
    nodes: usize,
    slots_per_node: usize,
    rounds: usize,
    seed: u64,
    cfg: TmkConfig,
) {
    let total = nodes * slots_per_node;
    // Reference: value of each slot after each round (deterministic).
    let value = move |round: usize, slot: usize, seed: u64| -> u64 {
        let x = (round as u64 + 1)
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add((slot as u64).wrapping_mul(0x2545F4914F6CDD1D))
            .wrapping_add(seed);
        x | 1
    };
    let writes = move |round: usize, node: usize, seed: u64| -> Vec<usize> {
        // Deterministic pseudo-random subset of the node's own slots.
        (0..slots_per_node)
            .filter(|&k| {
                let h = (round as u64)
                    .wrapping_mul(31)
                    .wrapping_add(node as u64 * 17)
                    .wrapping_add(k as u64 * 13)
                    .wrapping_add(seed);
                !h.is_multiple_of(3)
            })
            .map(|k| node * slots_per_node + k)
            .collect()
    };

    // Reference execution.
    let mut reference = vec![0u64; total];
    for round in 0..rounds {
        for node in 0..nodes {
            for slot in writes(round, node, seed) {
                reference[slot] = value(round, slot, seed);
            }
        }
    }

    let out = tmk::run_system(cfg, move |tmk| {
        let mem = tmk.malloc_vec::<u64>(total);
        tmk.parallel(0, move |t| {
            let me = t.proc_id();
            for round in 0..rounds {
                for slot in writes(round, me, seed) {
                    t.write(&mem, slot, value(round, slot, seed));
                }
                t.barrier();
                // After the barrier every write of this round is visible.
                let probe = (me * 7 + round * 3) % total;
                let got = t.read(&mem, probe);
                let mut expect = 0;
                for r in (0..=round).rev() {
                    let owner = probe / slots_per_node;
                    if writes(r, owner, seed).contains(&probe) {
                        expect = value(r, probe, seed);
                        break;
                    }
                }
                assert_eq!(got, expect, "node {me} round {round} slot {probe}");
                t.barrier();
            }
        });
        tmk.read_slice(&mem, 0..total)
    });
    assert_eq!(out.result, reference, "final memory image diverged");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn random_drf_programs_match_reference(
        nodes in 2usize..5,
        slots in 3usize..24,
        rounds in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        run_random_rounds(nodes, slots, rounds, seed, TmkConfig::fast_test(nodes));
    }

    #[test]
    fn random_drf_programs_with_tiny_pages(
        nodes in 2usize..4,
        rounds in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        // 64-byte pages: eight u64 slots per page -> maximal false sharing.
        run_random_rounds(nodes, 8, rounds, seed, TmkConfig::stress_tiny_pages(nodes));
    }

    #[test]
    fn random_drf_programs_with_gc_every_barrier(
        nodes in 2usize..4,
        rounds in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = TmkConfig::fast_test(nodes);
        cfg.gc_every_barrier = true;
        run_random_rounds(nodes, 6, rounds, seed, cfg);
    }
}

#[test]
fn lock_ordering_transfers_latest_values() {
    // Chain of lock-protected increments across all nodes: final count
    // must equal the number of critical sections executed.
    for nodes in [2usize, 4, 8] {
        let out = tmk::run_system(TmkConfig::fast_test(nodes), move |tmk| {
            let counter = tmk.malloc_scalar::<u64>(0);
            tmk.parallel(0, move |t| {
                for _ in 0..20 {
                    t.lock_acquire(1);
                    let v = counter.get(t);
                    counter.set(t, v + 1);
                    t.lock_release(1);
                }
            });
            counter.get(tmk)
        });
        assert_eq!(out.result, nodes as u64 * 20);
    }
}

#[test]
fn sequential_section_sees_region_writes_and_vice_versa() {
    let out = tmk::run_system(TmkConfig::fast_test(3), |tmk| {
        let v = tmk.malloc_vec::<u64>(3);
        let mut log = Vec::new();
        for round in 1..=3u64 {
            // Master writes between regions; slaves must see it.
            tmk.write(&v, 0, round * 100);
            tmk.parallel(0, move |t| {
                let seen = t.read(&v, 0);
                assert_eq!(seen, round * 100, "node {} round {round}", t.proc_id());
                if t.proc_id() == 2 {
                    t.write(&v, 2, seen + 1);
                }
            });
            log.push(tmk.read(&v, 2));
        }
        log
    });
    assert_eq!(out.result, vec![101, 201, 301]);
}
