//! Always-on cluster metrics: recording must be invisible to the
//! simulation (results, per-job statistics, traffic and virtual times
//! identical whether or not anyone ever looks at the metrics), lifetime
//! per-op counters must reconcile *exactly* with the sum of per-job
//! [`TmkStats`] deltas, snapshots must be monotone across a warm job
//! stream and safe to take while a job runs, and both export formats
//! must validate.

use openmp_now::cli::RunnerArgs;
use openmp_now::nomp::{
    validate_metrics_json, validate_prometheus_text, Cluster, Env, MetricsSnapshot, RunReport,
    Schedule, TmkOp, TmkStats,
};
use openmp_now::ompc;

/// A host-timing-independent workload (same shape as the trace suite's):
/// a static-schedule fill, a barrier-only region, and a bulk read-back.
fn det_workload(omp: &mut Env<'_>) -> f64 {
    let n = 4096;
    let a = omp.malloc_vec::<f64>(n);
    omp.parallel_for_chunks(Schedule::Static, 0..n, move |t, r| {
        t.view_mut(&a, r.clone(), |chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = (r.start + k) as f64;
            }
        });
    });
    omp.parallel(|t| t.barrier());
    omp.read_slice(&a, 0..n).iter().sum()
}

fn cluster(nodes: usize, tpn: usize) -> Cluster {
    Cluster::builder()
        .nodes(nodes)
        .threads_per_node(tpn)
        .build()
        .expect("valid cluster")
}

/// Observing the metrics must have zero behavioral impact: a run whose
/// metrics are snapshotted before, between and (from another thread)
/// *during* jobs reports bit-identical results, DSM statistics and
/// traffic to a run nobody observes.
fn assert_observation_invisible(nodes: usize, tpn: usize) {
    let quiet: Vec<RunReport<f64>> = {
        let mut c = cluster(nodes, tpn);
        (0..2)
            .map(|_| c.run(det_workload).expect("job runs"))
            .collect()
    };
    let observed: Vec<RunReport<f64>> = {
        let mut c = cluster(nodes, tpn);
        let handle = c.metrics_handle();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hammer = {
            let (handle, stop) = (handle.clone(), stop.clone());
            std::thread::spawn(move || {
                let mut snaps = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let s = handle.snapshot();
                    assert!(s.jobs_failed == 0);
                    snaps += 1;
                }
                snaps
            })
        };
        let _ = c.metrics(); // before any job
        let out = (0..2)
            .map(|_| {
                let r = c.run(det_workload).expect("job runs");
                let _ = c.metrics(); // between jobs
                r
            })
            .collect();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let snaps = hammer.join().expect("snapshot thread lives");
        assert!(snaps > 0, "the observer thread actually snapshotted");
        out
    };
    for (q, o) in quiet.iter().zip(&observed) {
        assert_eq!(q.result, o.result, "{nodes}x{tpn}: results diverged");
        assert_eq!(q.dsm, o.dsm, "{nodes}x{tpn}: TmkStats diverged");
        assert_eq!(q.net, o.net, "{nodes}x{tpn}: traffic diverged");
    }
}

#[test]
fn observing_metrics_is_bit_invisible_on_4x1() {
    assert_observation_invisible(4, 1);
}

#[test]
fn observing_metrics_is_bit_invisible_on_2x2() {
    assert_observation_invisible(2, 2);
}

/// The acceptance bar: lifetime per-op counters reconcile *exactly* with
/// the sum of per-job `TmkStats` deltas — both views are incremented by
/// the same call, so not even one event may leak between them.
#[test]
fn lifetime_op_counters_reconcile_with_per_job_deltas() {
    let mut c = cluster(4, 1);
    let mut summed = TmkStats::default();
    for _ in 0..3 {
        let out = c.run(det_workload).expect("job runs");
        summed.merge(&out.dsm);
    }
    let snap = c.metrics();
    assert_eq!(
        snap.ops_as_stats(),
        summed,
        "lifetime counters must equal the sum of per-job deltas"
    );
    for op in TmkOp::ALL {
        assert_eq!(
            snap.op_total(*op),
            op.read(&summed),
            "op {} diverged",
            op.name()
        );
    }
    // The workload exercises the protocol: the reconciliation above must
    // not be comparing zeros.
    assert!(snap.op_total(TmkOp::Barriers) > 0);
    assert!(snap.op_total(TmkOp::ReadFaults) > 0);
    assert!(snap.op_total(TmkOp::DiffsCreated) > 0);
}

/// Warm-cluster snapshots are monotone: counters never decrease across a
/// job stream, the job counter tracks jobs run, and per-job virtual
/// times land in the job-duration histogram.
#[test]
fn snapshots_are_monotone_across_a_warm_job_stream() {
    let mut c = cluster(2, 1);
    let mut snaps: Vec<MetricsSnapshot> = vec![c.metrics()];
    for _ in 0..3 {
        c.run(det_workload).expect("job runs");
        snaps.push(c.metrics());
    }
    for (k, pair) in snaps.windows(2).enumerate() {
        let (prev, cur) = (&pair[0], &pair[1]);
        assert_eq!(cur.jobs_completed, prev.jobs_completed + 1);
        for op in TmkOp::ALL {
            assert!(
                cur.op_total(*op) >= prev.op_total(*op),
                "op {} decreased after job {k}",
                op.name()
            );
        }
        assert!(cur.net.total_send_msgs() >= prev.net.total_send_msgs());
        assert!(cur.net.total_send_bytes() >= prev.net.total_send_bytes());
        assert!(cur.uptime_host_ns >= prev.uptime_host_ns);
    }
    let last = snaps.last().unwrap();
    assert_eq!(last.jobs_completed, c.jobs_run() as u64);
    assert_eq!(last.jobs_failed, 0);
    assert_eq!(last.jobs_in_flight, 0, "no job is running between jobs");
    assert_eq!(last.job_vt_ns.count(), 3, "one histogram entry per job");
    assert_eq!(last.reset_host_ns.count(), 3, "one warm reset per job");
}

/// The lifetime traffic view is richer than the per-job deltas: it also
/// counts the job-boundary reset round's control messages, which the
/// per-job snapshot is deliberately taken before. Exactly `n - 1`
/// `reset_req` fan-out messages per job.
#[test]
fn lifetime_traffic_covers_per_job_deltas_plus_reset_rounds() {
    let nodes = 4;
    let jobs = 3u64;
    let mut c = cluster(nodes, 1);
    let mut per_job_msgs = 0u64;
    for _ in 0..jobs {
        per_job_msgs += c.run(det_workload).expect("job runs").net.total_msgs();
    }
    let net = c.metrics().net;
    assert!(
        net.total_send_msgs() >= per_job_msgs,
        "lifetime sends ({}) must cover the per-job deltas ({per_job_msgs})",
        net.total_send_msgs()
    );
    let reset = net.kind("reset_req").expect("reset_req is a wire kind");
    assert_eq!(
        reset.send_msgs,
        (nodes as u64 - 1) * jobs,
        "one reset_req per slave per job"
    );
    let done = net.kind("reset_done").expect("reset_done is a wire kind");
    assert_eq!(done.send_msgs, (nodes as u64 - 1) * jobs);
    // Application traffic dominates: page/diff kinds show up too.
    assert!(net.kind("diff_req").map_or(0, |k| k.send_msgs) > 0);
}

/// The issue's export acceptance bar: `jacobi.omp` on a 4×2 SMP cluster
/// produces a snapshot whose Prometheus rendering passes the validator
/// and whose JSON parses, with the expected metric families present.
#[test]
fn jacobi_4x2_exports_validate() {
    let prog = ompc::compile(include_str!("../examples/omp/jacobi.omp")).expect("jacobi compiles");
    let mut c = cluster(4, 2);
    c.run(&prog).expect("jacobi runs");
    let snap = c.metrics();

    let prom = snap.to_prometheus();
    validate_prometheus_text(&prom).unwrap_or_else(|e| panic!("invalid Prometheus text: {e}"));
    for family in [
        "now_jobs_total",
        "now_dsm_ops_total",
        "now_op_vt_ns",
        "now_op_host_ns",
        "now_net_send_msgs_total",
        "now_net_kind_msgs_total",
        "now_smp_team_forks_total",
        "now_loop_chunk_len",
        "now_job_vt_ns",
    ] {
        assert!(prom.contains(family), "family {family} missing");
    }
    // 4 nodes × 2 threads fork one team per node per region.
    assert!(snap.nodes.iter().all(|n| n.team_forks > 0));
    assert!(snap.nodes.iter().any(|n| n.local_barriers > 0));
    assert!(snap.nodes.iter().any(|n| n.chunks_claimed > 0));

    let json = snap.to_json();
    validate_metrics_json(&json).unwrap_or_else(|e| panic!("invalid metrics JSON: {e}"));
    assert!(json.contains("\"jobs\""));
    assert!(json.contains("\"ops_total\""));
    assert!(json.contains("\"net\""));
}

#[test]
fn runner_cli_metrics_flags_round_trip() {
    let argv: Vec<String> = [
        "--nodes",
        "2",
        "--metrics",
        "out.prom",
        "--metrics-json",
        "out.json",
        "x.omp",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let a = RunnerArgs::parse(&argv).expect("valid args");
    assert_eq!(a.metrics.as_deref(), Some("out.prom"));
    assert_eq!(a.metrics_json.as_deref(), Some("out.json"));
    assert_eq!(a.files, vec!["x.omp"]);
    // Metrics are always on: the flags never arm tracing.
    assert!(!a.tracing());
    assert!(a.cluster().expect("buildable").config().tmk.trace.is_none());

    // Defaults: no export paths.
    let d = RunnerArgs::parse(&[]).unwrap();
    assert_eq!(d.metrics, None);
    assert_eq!(d.metrics_json, None);

    // Malformed paths are rejected with a one-line diagnostic.
    let cases: &[&[&str]] = &[
        &["--metrics"],
        &["--metrics", "--nodes"],
        &["--metrics", ""],
        &["--metrics", "out/"],
        &["--metrics-json"],
        &["--metrics-json", "--profile"],
        &["--metrics-json", "dir/"],
    ];
    for case in cases {
        let argv: Vec<String> = case.iter().map(|s| s.to_string()).collect();
        let err = RunnerArgs::parse(&argv).expect_err(&format!("{case:?} must be rejected"));
        assert!(
            err.contains("--metrics"),
            "{case:?}: diagnostic names the flag, got `{err}`"
        );
    }
    // The unknown-flag message advertises the new flags.
    let err = RunnerArgs::parse(&["--bogus".to_string()]).unwrap_err();
    assert!(err.contains("--metrics"), "{err}");
    assert!(err.contains("--metrics-json"), "{err}");
}

/// The runner's out-path contract, `--metrics` vs `--trace`: a trace is
/// a *per-job* artifact — multi-job invocations splice `.job<N>` before
/// the extension so repetitions don't overwrite each other — while
/// metrics are *one cumulative lifetime snapshot* covering every job,
/// written once to the path given verbatim. There is deliberately no
/// per-job metrics path.
#[test]
fn metrics_path_is_one_lifetime_snapshot_unlike_per_job_trace_paths() {
    let argv: Vec<String> = [
        "--repeat",
        "3",
        "--trace",
        "t.json",
        "--metrics",
        "m.prom",
        "--metrics-json",
        "m.json",
        "x.omp",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let a = RunnerArgs::parse(&argv).expect("valid args");

    // Three jobs -> three distinct trace files.
    assert_eq!(a.trace_path(0, true).as_deref(), Some("t.job0.json"));
    assert_eq!(a.trace_path(1, true).as_deref(), Some("t.job1.json"));
    assert_eq!(a.trace_path(2, true).as_deref(), Some("t.job2.json"));
    // A single-job invocation writes the trace path verbatim.
    assert_eq!(a.trace_path(0, false).as_deref(), Some("t.json"));

    // Three jobs -> still exactly one metrics path per flag, verbatim:
    // the snapshot is cumulative over the warm cluster's lifetime, so a
    // job suffix would be meaningless.
    assert_eq!(a.metrics.as_deref(), Some("m.prom"));
    assert_eq!(a.metrics_json.as_deref(), Some("m.json"));

    // And the snapshot really is cumulative: three warm jobs triple the
    // parallel-region count relative to one job.
    let mut c = cluster(2, 1);
    c.run(det_workload).expect("job 1");
    let after_one = c.metrics().op_total(TmkOp::Barriers);
    c.run(det_workload).expect("job 2");
    c.run(det_workload).expect("job 3");
    let after_three = c.metrics().op_total(TmkOp::Barriers);
    assert_eq!(after_three, 3 * after_one, "snapshot covers all jobs");
    c.shutdown();
}
