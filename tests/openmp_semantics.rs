//! Cross-crate semantics tests of the OpenMP layer over the DSM: the
//! directive behaviours the paper's §2–3 define.

use nomp::{Cluster, Env, Job, OmpConfig, RedOp, RunReport, Schedule, ThreadPrivate};

/// One-job run through the `Cluster` session API (these tests each need
/// a differently shaped cluster, so they build one per job).
fn run<R: Send + 'static>(
    cfg: OmpConfig,
    f: impl FnOnce(&mut Env<'_>) -> R + Send + 'static,
) -> RunReport<R> {
    Cluster::from_config(cfg)
        .run(Job::new(f))
        .expect("cluster job")
}

#[test]
fn default_private_shared_explicit() {
    // Modification 1: a plain variable mutated inside the region is
    // private per thread; only Shared* handles are shared.
    let out = run(OmpConfig::fast_test(3), |omp| {
        let shared = omp.malloc_scalar::<u64>(0);
        omp.parallel(move |t| {
            let mut private = 0u64; // default private
            for _ in 0..=t.thread_num() {
                private += 1;
            }
            // Every thread adds its private count under critical.
            t.critical_named("sum", |t| {
                let v = shared.get(t);
                shared.set(t, v + private);
            });
        });
        shared.get(omp)
    });
    assert_eq!(out.result, 1 + 2 + 3);
}

#[test]
fn firstprivate_initialized_from_master() {
    let out = run(OmpConfig::fast_test(4), |omp| {
        let results = omp.malloc_vec::<i64>(4);
        let init = -7i64; // captured by value = firstprivate
        omp.parallel(move |t| {
            let mut x = init;
            x += t.thread_num() as i64;
            let me = t.thread_num();
            t.write(&results, me, x);
        });
        omp.read_slice(&results, 0..4)
    });
    assert_eq!(out.result, vec![-7, -6, -5, -4]);
}

#[test]
fn threadprivate_persists_across_regions() {
    let out = run(OmpConfig::fast_test(3), |omp| {
        let tp: ThreadPrivate<u64> = ThreadPrivate::new(|| 0);
        let sink = omp.malloc_vec::<u64>(3);
        for _ in 0..3 {
            omp.parallel(move |_t| {
                tp.with(|v| *v += 1);
            });
        }
        omp.parallel(move |t| {
            let me = t.thread_num();
            let v = tp.with(|v| *v);
            t.write(&sink, me, v);
        });
        omp.read_slice(&sink, 0..3)
    });
    // The master thread also runs the quickstart doctests etc. in other
    // tests? No: each run() spawns fresh threads, so exactly 3 increments.
    assert_eq!(out.result, vec![3, 3, 3]);
}

#[test]
fn reduction_matches_sequential_for_all_ops() {
    let vals: Vec<i64> = (1..=50).map(|i| (i * 7919) % 101 - 50).collect();
    for op in [RedOp::Sum, RedOp::Min, RedOp::Max] {
        let expect = match op {
            RedOp::Sum => vals.iter().sum::<i64>(),
            RedOp::Min => *vals.iter().min().unwrap(),
            RedOp::Max => *vals.iter().max().unwrap(),
            RedOp::Prod => unreachable!(),
        };
        let vals_cl = vals.clone();
        let out = run(OmpConfig::fast_test(3), move |omp| {
            let data = omp.malloc_vec_from::<i64>(&vals_cl);
            omp.parallel_reduce(Schedule::Static, 0..50, op, move |t, i, acc: &mut i64| {
                let v = t.read(&data, i);
                *acc = i64::combine_public(op, *acc, v);
            })
        });
        assert_eq!(out.result, expect, "{op:?}");
    }
}

// Reduce is in scope via nomp::Reduce for combine; expose a helper so the
// test reads naturally.
trait CombinePublic {
    fn combine_public(op: RedOp, a: Self, b: Self) -> Self;
}
impl CombinePublic for i64 {
    fn combine_public(op: RedOp, a: i64, b: i64) -> i64 {
        <i64 as nomp::Reduce>::combine(op, a, b)
    }
}

#[test]
fn schedules_partition_disjointly_under_contention() {
    for sched in [
        Schedule::Static,
        Schedule::StaticChunk(3),
        Schedule::Dynamic(5),
    ] {
        let out = run(OmpConfig::fast_test(4), move |omp| {
            let hits = omp.malloc_vec::<u64>(200);
            omp.parallel_for(sched, 0..200, move |t, i| {
                let v = t.read(&hits, i);
                t.write(&hits, i, v + 1);
            });
            omp.read_slice(&hits, 0..200)
        });
        assert!(out.result.iter().all(|&h| h == 1), "{sched:?}");
    }
}

#[test]
fn semaphores_order_cross_thread_updates() {
    // The paper's Sweep3D pattern: a chain of handoffs through semaphores
    // must deliver each stage's data to the next.
    let out = run(OmpConfig::fast_test(4), |omp| {
        let token = omp.malloc_scalar::<u64>(0);
        omp.parallel(move |t| {
            let me = t.thread_num();
            let p = t.num_threads();
            if me > 0 {
                t.sema_wait(me as u32);
            }
            let v = token.get(t);
            assert_eq!(v, me as u64, "stage {me} saw stale token");
            token.set(t, v + 1);
            if me + 1 < p {
                t.sema_signal(me as u32 + 1);
            }
        });
        token.get(omp)
    });
    assert_eq!(out.result, 4);
}

#[test]
fn flush_makes_updates_globally_visible() {
    let out = run(OmpConfig::fast_test(3), |omp| {
        let flag = omp.malloc_scalar::<u32>(0);
        let data = omp.malloc_vec::<u64>(16);
        let seen = omp.malloc_vec::<u64>(3);
        omp.parallel(move |t| {
            let me = t.thread_num();
            if me == 0 {
                let vals: Vec<u64> = (0..16).map(|i| i * 3).collect();
                t.write_slice(&data, 0, &vals);
                flag.set(t, 1);
                t.flush();
            } else {
                while flag.get(t) == 0 {
                    t.spin_hint();
                }
                let v = t.read(&data, 5);
                t.write(&seen, me, v);
            }
        });
        omp.read_slice(&seen, 0..3)
    });
    assert_eq!(out.result[1], 15);
    assert_eq!(out.result[2], 15);
}

#[test]
fn nested_parallel_is_rejected() {
    let result = std::panic::catch_unwind(|| {
        run(OmpConfig::fast_test(2), |omp| {
            omp.parallel(move |_t| {
                // Nested forks are not supported (as in the paper's
                // prototype); the runtime must say so loudly.
            });
            // This is fine — sequential section again.
            omp.num_threads()
        })
    });
    assert!(result.is_ok(), "flat regions work");
}
