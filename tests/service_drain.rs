//! Graceful drain, in its own test binary: these tests count host
//! threads via `/proc/self/status`, a measurement the other service
//! tests would race if they shared the process.
//!
//! Proves the two drain acceptance criteria:
//! * no leaked threads — after `Service::drain` (and `TcpFront`
//!   shutdown) the process is back to its pre-service thread count;
//! * a drained-then-restarted pool is bit-identical to a fresh cold
//!   run — the warm-vs-cold invariant of the session API survives the
//!   service lifecycle.

use nomp::{Cluster, ClusterBuilder, Env};
use now_service::{JobRequest, JobValue, ServiceConfig};

fn det_builder(nodes: usize) -> ClusterBuilder {
    Cluster::builder().nodes(nodes).fast_test().tmk(|t| {
        t.net.compute_scale = 0.0;
        t.net.send_overhead_ns = 0;
        t.net.handler_ns = 0;
        t.net.local_delivery_ns = 0;
    })
}

fn det_body(omp: &mut Env<'_>) -> JobValue {
    const SLAB: usize = 256;
    let nthreads = omp.num_threads();
    let data = omp.malloc_vec::<u64>(nthreads * SLAB);
    omp.parallel(move |t| {
        let me = t.thread_num();
        let vals: Vec<u64> = (0..SLAB).map(|i| (me * SLAB + i) as u64).collect();
        t.write_slice_push(&data, me * SLAB, &vals);
    });
    JobValue::Nums(
        omp.read_slice(&data, 0..nthreads * SLAB)
            .into_iter()
            .map(|v| v as f64)
            .collect(),
    )
}

/// Host threads in this process (Linux; `None` elsewhere, where the
/// leak assertion is skipped and the bit-identity half still runs).
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn drain_joins_every_thread_and_a_restarted_pool_is_bit_identical() {
    // Cold reference, torn down before the baseline is measured.
    let reference = det_builder(2)
        .build()
        .expect("cold cluster")
        .run(det_body)
        .expect("cold job");

    let baseline = thread_count();

    // Round 1: a full service lifecycle — pool, TCP endpoint, jobs.
    let service = ServiceConfig::new()
        .pool(2)
        .cluster(det_builder(2))
        .build()
        .expect("service");
    let front = now_service::TcpFront::bind(service.handle(), "127.0.0.1:0").expect("bind");
    let tickets: Vec<_> = (0..4)
        .map(|_| {
            service
                .submit(JobRequest::closure(det_body))
                .expect("admit")
        })
        .collect();
    let first: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().outcome.expect("job completed"))
        .collect();
    front.shutdown();
    let summary = service.drain();
    assert_eq!(summary.completed, 4);

    // No leaked threads: pool workers, their clusters' node threads and
    // the TCP acceptor are all joined.
    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert_eq!(
            after, before,
            "drain leaked threads: {before} before, {after} after"
        );
    }

    // Round 2: a fresh pool from a fresh config. Bit-identical to both
    // round 1 and the cold direct run.
    let service = ServiceConfig::new()
        .pool(2)
        .cluster(det_builder(2))
        .build()
        .expect("restarted service");
    let again = service
        .submit(JobRequest::closure(det_body))
        .expect("admit")
        .wait()
        .outcome
        .expect("job completed");
    let expect = reference.result.clone();
    for run in first.iter().chain([&again]) {
        assert_eq!(run.result, expect, "results diverged across restart");
        assert_eq!(run.vt_ns, reference.vt_ns, "virtual time diverged");
        assert_eq!(run.dsm, reference.dsm, "DSM stats diverged");
    }
    service.drain();

    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert_eq!(after, before, "second drain leaked threads");
    }

    // Round 3: dropping a service (no explicit drain) runs the same
    // protocol. One test body throughout — thread counts must not race
    // a sibling test.
    {
        let service = ServiceConfig::new()
            .pool(1)
            .cluster(det_builder(1))
            .build()
            .expect("service");
        let t = service
            .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Num(1.0)))
            .expect("admit");
        assert!(t.wait().outcome.is_ok());
    }
    if let (Some(before), Some(after)) = (baseline, thread_count()) {
        assert_eq!(after, before, "drop-drain leaked threads");
    }
}
