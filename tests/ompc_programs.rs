//! Acceptance tests for the `ompc` front-end: every bundled `.omp`
//! example program parses, lowers, and executes on 1/2/4/8 simulated
//! workstations with results matching a native-Rust reference
//! implementation.

use nomp::{OmpConfig, Schedule};

const NODES: [usize; 4] = [1, 2, 4, 8];

const PI: &str = include_str!("../examples/omp/pi.omp");
const DOTPROD: &str = include_str!("../examples/omp/dotprod.omp");
const JACOBI: &str = include_str!("../examples/omp/jacobi.omp");
const FIB: &str = include_str!("../examples/omp/fib.omp");
const QSORT: &str = include_str!("../examples/omp/qsort.omp");

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn pi_matches_native_reference() {
    // Native reference: same midpoint rule, same trip count.
    let n = 20_000;
    let step = 1.0 / n as f64;
    let expect: f64 = (0..n)
        .map(|i| 4.0 / (1.0 + ((i as f64 + 0.5) * step).powi(2)))
        .sum::<f64>()
        * step;
    for nodes in NODES {
        let out = ompc::run_source(PI, OmpConfig::fast_test(nodes)).unwrap();
        let pi = out.scalars["pi"];
        assert!(
            close(pi, expect, 1e-9),
            "{nodes} nodes: {pi} vs reference {expect}"
        );
        assert!((pi - std::f64::consts::PI).abs() < 1e-7);
        // The translated program paid real fork/barrier/page traffic.
        if nodes > 1 {
            assert!(out.msgs > 0, "{nodes} nodes: no DSM traffic?");
        }
        assert!(out.vt_ns > 0);
    }
}

#[test]
fn dotprod_matches_native_reference() {
    let n = 4096;
    let expect: f64 = (0..n)
        .map(|i| (0.5 + (i % 17) as f64) * (1.0 / (1 + i % 13) as f64))
        .sum();
    for nodes in NODES {
        // Also exercise schedule(runtime): the second loop defers to the
        // configuration, which we point at dynamic chunking.
        let mut cfg = OmpConfig::fast_test(nodes);
        cfg.runtime_schedule = Schedule::Dynamic(256);
        let out = ompc::run_source(DOTPROD, cfg).unwrap();
        assert!(
            close(out.scalars["dot"], expect, 1e-9),
            "{nodes} nodes: {} vs {expect}",
            out.scalars["dot"]
        );
    }
}

#[test]
fn jacobi_matches_native_reference_exactly() {
    // The stencil update is element-wise deterministic, so the final
    // grid must match bit-for-bit on any node count.
    let n = 258usize;
    let sweeps = 40;
    let mut u = vec![0.0f64; n];
    let mut unew = vec![0.0f64; n];
    u[0] = 1.0;
    unew[0] = 1.0;
    for _ in 0..sweeps {
        for i in 1..n - 1 {
            unew[i] = 0.5 * (u[i - 1] + u[i + 1]);
        }
        u[1..n - 1].copy_from_slice(&unew[1..n - 1]);
    }
    let resid = (1..n - 1)
        .map(|i| (0.5 * (u[i - 1] + u[i + 1]) - u[i]).abs())
        .fold(0.0f64, f64::max);
    for nodes in NODES {
        let out = ompc::run_source(JACOBI, OmpConfig::fast_test(nodes)).unwrap();
        assert_eq!(out.arrays["u"], u, "{nodes} nodes: grid diverged");
        assert!(
            close(out.scalars["resid"], resid, 1e-12),
            "{nodes} nodes: residual {} vs {resid}",
            out.scalars["resid"]
        );
    }
}

#[test]
fn fib_matches_native_reference() {
    fn fib(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib(n - 1) + fib(n - 2)
        }
    }
    let expect = fib(16) as f64;
    for nodes in NODES {
        let out = ompc::run_source(FIB, OmpConfig::fast_test(nodes)).unwrap();
        assert_eq!(out.scalars["count"], expect, "{nodes} nodes");
        assert!(out.dsm.tasks_executed > 0, "{nodes} nodes: no tasks ran");
    }
}

#[test]
fn qsort_matches_native_reference() {
    // Replicate the program's LCG fill, sort natively, compare final
    // array contents exactly.
    let n = 400usize;
    let mut seed = 7i64;
    let mut expect = Vec::with_capacity(n);
    for _ in 0..n {
        seed = (seed * 1069 + 1) % 65536;
        expect.push((seed % 1000) as f64);
    }
    expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for nodes in NODES {
        let out = ompc::run_source(QSORT, OmpConfig::fast_test(nodes)).unwrap();
        assert_eq!(out.ret, 0.0, "{nodes} nodes: sort left inversions");
        assert_eq!(out.arrays["a"], expect, "{nodes} nodes: wrong contents");
    }
}

#[test]
fn printed_output_is_captured_from_sequential_context() {
    let out = ompc::run_source(PI, OmpConfig::fast_test(2)).unwrap();
    assert_eq!(out.printed.len(), 2);
    assert!(out.printed[0].starts_with("pi = 3.14"), "{:?}", out.printed);
    assert!(
        out.printed[1].starts_with("elapsed virtual seconds = "),
        "{:?}",
        out.printed
    );
}
