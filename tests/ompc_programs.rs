//! Acceptance tests for the `ompc` front-end: every bundled `.omp`
//! example program parses, lowers, and executes on 1/2/4/8 simulated
//! workstations — and on mixed SMP-cluster topologies — with results
//! matching a native-Rust reference implementation.
//!
//! The scalar references for pi/dotprod/jacobi are the single source in
//! [`now_bench::smp::native_reference`] (shared with the bench ablation
//! and the `smp_topologies` example); the grid/array references that
//! must match bit-for-bit are computed by the helpers below.

use nomp::{Cluster, OmpConfig, RunReport, Schedule};
use now_bench::smp::native_reference;
use ompc::ProgramOutput;

/// Compile once and run as a job through the `Cluster` session API (the
/// path every one-shot shim funnels into).
fn run_omp(src: &str, cfg: OmpConfig) -> RunReport<ProgramOutput> {
    let prog = ompc::compile(src).expect("bundled program must compile");
    Cluster::from_config(cfg).run(prog).expect("cluster job")
}

const NODES: [usize; 4] = [1, 2, 4, 8];

const PI: &str = include_str!("../examples/omp/pi.omp");
const DOTPROD: &str = include_str!("../examples/omp/dotprod.omp");
const JACOBI: &str = include_str!("../examples/omp/jacobi.omp");
const FIB: &str = include_str!("../examples/omp/fib.omp");
const QSORT: &str = include_str!("../examples/omp/qsort.omp");

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// jacobi.omp's final grid (element-wise deterministic, so translated
/// runs must match bit-for-bit on any topology).
fn jacobi_reference_grid() -> Vec<f64> {
    let n = 258usize;
    let mut u = vec![0.0f64; n];
    let mut unew = vec![0.0f64; n];
    u[0] = 1.0;
    unew[0] = 1.0;
    for _ in 0..40 {
        for i in 1..n - 1 {
            unew[i] = 0.5 * (u[i - 1] + u[i + 1]);
        }
        u[1..n - 1].copy_from_slice(&unew[1..n - 1]);
    }
    u
}

fn fib(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib(n - 1) + fib(n - 2)
    }
}

/// qsort.omp's array after sorting (replicates the program's LCG fill).
fn qsort_reference_sorted() -> Vec<f64> {
    let n = 400usize;
    let mut seed = 7i64;
    let mut expect = Vec::with_capacity(n);
    for _ in 0..n {
        seed = (seed * 1069 + 1) % 65536;
        expect.push((seed % 1000) as f64);
    }
    expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
    expect
}

#[test]
fn pi_matches_native_reference() {
    let expect = native_reference("pi");
    for nodes in NODES {
        let out = run_omp(PI, OmpConfig::fast_test(nodes));
        let pi = out.result.scalars["pi"];
        assert!(
            close(pi, expect, 1e-9),
            "{nodes} nodes: {pi} vs reference {expect}"
        );
        assert!((pi - std::f64::consts::PI).abs() < 1e-7);
        // The translated program paid real fork/barrier/page traffic.
        if nodes > 1 {
            assert!(out.msgs() > 0, "{nodes} nodes: no DSM traffic?");
        }
        assert!(out.vt_ns > 0);
    }
}

#[test]
fn dotprod_matches_native_reference() {
    let expect = native_reference("dotprod");
    for nodes in NODES {
        // Also exercise schedule(runtime): the second loop defers to the
        // configuration, which we point at dynamic chunking.
        let mut cfg = OmpConfig::fast_test(nodes);
        cfg.runtime_schedule = Schedule::Dynamic(256);
        let out = run_omp(DOTPROD, cfg);
        assert!(
            close(out.result.scalars["dot"], expect, 1e-9),
            "{nodes} nodes: {} vs {expect}",
            out.result.scalars["dot"]
        );
    }
}

#[test]
fn jacobi_matches_native_reference_exactly() {
    let u = jacobi_reference_grid();
    let resid = native_reference("jacobi");
    for nodes in NODES {
        let out = run_omp(JACOBI, OmpConfig::fast_test(nodes));
        assert_eq!(out.result.arrays["u"], u, "{nodes} nodes: grid diverged");
        assert!(
            close(out.result.scalars["resid"], resid, 1e-12),
            "{nodes} nodes: residual {} vs {resid}",
            out.result.scalars["resid"]
        );
    }
}

#[test]
fn fib_matches_native_reference() {
    let expect = fib(16) as f64;
    for nodes in NODES {
        let out = run_omp(FIB, OmpConfig::fast_test(nodes));
        assert_eq!(out.result.scalars["count"], expect, "{nodes} nodes");
        assert!(out.dsm.tasks_executed > 0, "{nodes} nodes: no tasks ran");
    }
}

#[test]
fn qsort_matches_native_reference() {
    let expect = qsort_reference_sorted();
    for nodes in NODES {
        let out = run_omp(QSORT, OmpConfig::fast_test(nodes));
        assert_eq!(out.result.ret, 0.0, "{nodes} nodes: sort left inversions");
        assert_eq!(
            out.result.arrays["a"], expect,
            "{nodes} nodes: wrong contents"
        );
    }
}

/// SMP-cluster acceptance: every bundled program produces results
/// matching its native reference on mixed `nodes × threads_per_node`
/// topologies — translated programs run unchanged on any topology
/// because `omp_get_num_threads()` resolves to the total thread count.
#[test]
fn all_programs_match_references_on_mixed_topologies() {
    const MIXED: [(usize, usize); 3] = [(2, 2), (4, 2), (2, 4)];
    let pi_ref = native_reference("pi");
    let dot_ref = native_reference("dotprod");
    let u = jacobi_reference_grid();
    let sorted = qsort_reference_sorted();

    for (nodes, tpn) in MIXED {
        let cfg = || OmpConfig::fast_test_smp(nodes, tpn);

        let out = run_omp(PI, cfg());
        assert!(
            close(out.result.scalars["pi"], pi_ref, 1e-9),
            "pi {nodes}x{tpn}: {} vs {pi_ref}",
            out.result.scalars["pi"]
        );

        let mut dcfg = cfg();
        dcfg.runtime_schedule = Schedule::Dynamic(256);
        let out = run_omp(DOTPROD, dcfg);
        assert!(
            close(out.result.scalars["dot"], dot_ref, 1e-9),
            "dotprod {nodes}x{tpn}: {} vs {dot_ref}",
            out.result.scalars["dot"]
        );

        let out = run_omp(JACOBI, cfg());
        assert_eq!(
            out.result.arrays["u"], u,
            "jacobi {nodes}x{tpn}: grid diverged"
        );

        let out = run_omp(FIB, cfg());
        assert_eq!(
            out.result.scalars["count"],
            fib(16) as f64,
            "fib {nodes}x{tpn}"
        );
        assert!(
            out.dsm.tasks_executed > 0,
            "fib {nodes}x{tpn}: no tasks ran"
        );

        let out = run_omp(QSORT, cfg());
        assert_eq!(out.result.ret, 0.0, "qsort {nodes}x{tpn}: inversions");
        assert_eq!(
            out.result.arrays["a"], sorted,
            "qsort {nodes}x{tpn}: contents"
        );
    }
}

/// Moving the 8 threads of the pi kernel on-node sheds DSM messages
/// monotonically; one SMP node needs none at all.
#[test]
fn pi_traffic_falls_as_threads_move_on_node() {
    let msgs: Vec<u64> = [(8, 1), (4, 2), (2, 4), (1, 8)]
        .into_iter()
        .map(|(nodes, tpn)| {
            let out = run_omp(PI, OmpConfig::fast_test_smp(nodes, tpn));
            assert!(
                (out.result.scalars["pi"] - std::f64::consts::PI).abs() < 1e-7,
                "{nodes}x{tpn}"
            );
            out.msgs()
        })
        .collect();
    assert!(
        msgs.windows(2).all(|w| w[0] > w[1]),
        "pi DSM messages must fall as threads move on-node: {msgs:?}"
    );
    assert_eq!(msgs[3], 0, "1x8 runs the whole program without the wire");
}

#[test]
fn printed_output_is_captured_from_sequential_context() {
    let out = run_omp(PI, OmpConfig::fast_test(2));
    assert_eq!(out.result.printed.len(), 2);
    assert!(
        out.result.printed[0].starts_with("pi = 3.14"),
        "{:?}",
        out.result.printed
    );
    assert!(
        out.result.printed[1].starts_with("elapsed virtual seconds = "),
        "{:?}",
        out.result.printed
    );
}

#[test]
fn runner_cli_analyzer_flags_parse() {
    use openmp_now::cli::RunnerArgs;
    let argv: Vec<String> = ["--analyze=json", "--deny-races", "x.omp"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let a = RunnerArgs::parse(&argv).expect("valid args");
    assert!(a.analyze && a.analyze_json && a.deny_races);
    assert!(!a.race_check);

    let b = RunnerArgs::parse(&["--analyze".into(), "--race-check".into()]).unwrap();
    assert!(b.analyze && !b.analyze_json && b.race_check);

    // Defaults: everything off.
    let d = RunnerArgs::parse(&[]).unwrap();
    assert!(!d.analyze && !d.analyze_json && !d.deny_races && !d.race_check);

    // Junk --analyze values and unknown flags get one-line messages
    // that name the analyzer flags.
    let e = RunnerArgs::parse(&["--analyze=yaml".into()]).expect_err("bad value");
    assert!(e.contains("json"), "{e}");
    let e = RunnerArgs::parse(&["--races".into()]).expect_err("unknown flag");
    assert!(e.contains("--deny-races"), "{e}");
}
