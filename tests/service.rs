//! The cluster-pool service, end to end: typed admission control,
//! deterministic weighted fair share, deadlines, priorities, panic
//! containment, metrics export, and the TCP front door.
//!
//! The drain/thread-leak/restart-bit-identity tests live in their own
//! binary (`tests/service_drain.rs`) because they count host threads —
//! a measurement other tests running in this binary would race.

use nomp::{Cluster, ClusterBuilder, Env};
use now_service::{JobError, JobRequest, JobValue, Rejected, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Deterministic cluster: measured compute and per-message CPU costs are
/// zero, so results and virtual times are pure functions of the modeled
/// protocol costs (the `cluster_api` determinism pattern).
fn det_builder(nodes: usize) -> ClusterBuilder {
    Cluster::builder().nodes(nodes).fast_test().tmk(|t| {
        t.net.compute_scale = 0.0;
        t.net.send_overhead_ns = 0;
        t.net.handler_ns = 0;
        t.net.local_delivery_ns = 0;
    })
}

/// Barrier-structured deterministic job body (page-disjoint slabs).
fn det_body(omp: &mut Env<'_>) -> JobValue {
    const SLAB: usize = 256;
    let nthreads = omp.num_threads();
    let data = omp.malloc_vec::<u64>(nthreads * SLAB);
    omp.parallel(move |t| {
        let me = t.thread_num();
        let vals: Vec<u64> = (0..SLAB).map(|i| (me * SLAB + i) as u64).collect();
        t.write_slice_push(&data, me * SLAB, &vals);
    });
    JobValue::Nums(
        omp.read_slice(&data, 0..nthreads * SLAB)
            .into_iter()
            .map(|v| v as f64)
            .collect(),
    )
}

// ----------------------------------------------------------------------
// Bit identity: the pool changes *where* a job runs, never *what* it
// computes or how long it takes in virtual time.
// ----------------------------------------------------------------------

#[test]
fn service_jobs_are_bit_identical_to_a_direct_cluster() {
    // Direct warm cluster, the reference.
    let mut direct = det_builder(2).build().expect("direct cluster");
    let reference = direct.run(det_body).expect("direct job");

    // The same job through a pool of 2, six times: every run identical.
    let service = ServiceConfig::new()
        .pool(2)
        .cluster(det_builder(2))
        .build()
        .expect("service");
    let tickets: Vec<_> = (0..6)
        .map(|_| {
            service
                .submit(JobRequest::closure(det_body))
                .expect("admit")
        })
        .collect();
    for t in tickets {
        let report = t.wait();
        let run = report.outcome.expect("job completed");
        assert_eq!(run.result, reference.result, "results diverged");
        assert_eq!(run.vt_ns, reference.vt_ns, "virtual time diverged");
        assert_eq!(run.dsm, reference.dsm, "DSM stats diverged");
    }
    service.drain();
}

#[test]
fn omp_programs_run_through_the_service() {
    let prog = ompc::compile(
        r#"
        double pi;
        int main() {
            int n = 500;
            double step = 1.0 / n;
            #pragma omp parallel for reduction(+:pi) schedule(static)
            for (int i = 0; i < n; i = i + 1) {
                double x = (i + 0.5) * step;
                pi = pi + 4.0 / (1.0 + x * x);
            }
            pi = pi * step;
            return 0;
        }
        "#,
    )
    .expect("pi compiles");

    let mut direct = det_builder(2).build().expect("direct cluster");
    let reference = direct.run(&prog).expect("direct omp job");

    let service = ServiceConfig::new()
        .pool(2)
        .cluster(det_builder(2))
        .build()
        .expect("service");
    let a = service
        .submit(JobRequest::omp(prog.clone()))
        .expect("admit");
    let b = service.submit(JobRequest::omp(prog)).expect("admit");
    for t in [a, b] {
        let run = t.wait().outcome.expect("omp job completed");
        assert_eq!(run.result, JobValue::Program(reference.result.clone()));
        assert_eq!(run.vt_ns, reference.vt_ns);
    }
    let summary = service.drain();
    assert_eq!(summary.completed, 2);
    assert_eq!(summary.failed, 0);
}

// ----------------------------------------------------------------------
// Admission-time static analysis: a `deny_races` service rejects racy
// .omp programs with the typed lint rejection and never runs them;
// clean programs are unaffected.
// ----------------------------------------------------------------------

#[test]
fn deny_races_rejects_racy_omp_programs_at_admission() {
    let racy = ompc::compile(
        r#"
        double g;
        int main() {
            #pragma omp parallel
            {
                g = g + 1.0;
            }
            return 0;
        }
        "#,
    )
    .expect("racy program compiles");
    let clean = ompc::compile(
        r#"
        double g;
        int main() {
            #pragma omp parallel reduction(+:g)
            {
                g = g + 1.0;
            }
            return 0;
        }
        "#,
    )
    .expect("clean program compiles");

    let service = ServiceConfig::new()
        .pool(1)
        .cluster(det_builder(2))
        .deny_races(true)
        .build()
        .expect("service");

    let err = match service.submit(JobRequest::omp(racy)) {
        Err(e) => e,
        Ok(_) => panic!("racy program must be rejected"),
    };
    assert_eq!(err.kind(), "lint");
    match &err {
        Rejected::Lint(lints) => {
            assert!(!lints.is_empty());
            assert!(
                lints.iter().any(|l| l.code.code() == "OMP201"),
                "expected a shared-write-race finding, got {lints:?}"
            );
            for l in lints {
                assert_eq!(l.level, ompc::LintLevel::Deny, "{l}");
            }
        }
        other => panic!("expected Rejected::Lint, got {other:?}"),
    }
    assert!(err.to_string().contains("OMP201"), "{err}");

    let t = service
        .submit(JobRequest::omp(clean))
        .expect("clean program admitted");
    let run = t.wait().outcome.expect("clean program completed");
    // Each of the 2 threads adds 1.0 into the reduction.
    match run.result {
        JobValue::Program(p) => assert_eq!(p.scalars["g"], 2.0),
        other => panic!("unexpected payload {other:?}"),
    }

    let snap = service.metrics();
    assert_eq!(snap.tenants[0].rejected_lint, 1);
    assert_eq!(snap.tenants[0].admitted, 1);
    let summary = service.drain();
    assert_eq!(summary.completed, 1);
}

// ----------------------------------------------------------------------
// Fair share: deficit round-robin is weight-proportional — exactly so
// with one worker and a held (deterministic) service.
// ----------------------------------------------------------------------

#[test]
fn fair_share_dispatch_is_weight_proportional() {
    let service = ServiceConfig::new()
        .pool(1)
        .queue_bound(500)
        .cluster(det_builder(1))
        .tenant("alice", 2)
        .tenant("bob", 1)
        .hold()
        .record_dispatch(true)
        .build()
        .expect("service");

    // Saturate both tenants while held, so dispatch order is decided
    // purely by the scheduler, not submission timing.
    let mut tickets = Vec::new();
    for _ in 0..90 {
        tickets.push(
            service
                .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant("alice"))
                .expect("admit alice"),
        );
        tickets.push(
            service
                .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant("bob"))
                .expect("admit bob"),
        );
    }
    service.open();
    for t in tickets {
        assert!(t.wait().outcome.is_ok(), "every admitted job completes");
    }

    let log = service.dispatch_log();
    assert_eq!(log.len(), 180);
    // While both tenants are backlogged (alice drains first at 135),
    // every window is exactly 2:1 — stronger than the ±10% acceptance
    // bound.
    for prefix in [30usize, 60, 90, 135] {
        let a = log[..prefix].iter().filter(|(t, _)| t == "alice").count();
        let expect = prefix * 2 / 3;
        assert_eq!(
            a, expect,
            "first {prefix} dispatches: alice got {a}, want exactly {expect} (2:1)"
        );
    }
    // Within a tenant, FIFO among equal priorities.
    let alice_ids: Vec<u64> = log
        .iter()
        .filter(|(t, _)| t == "alice")
        .map(|&(_, id)| id)
        .collect();
    assert!(
        alice_ids.windows(2).all(|w| w[0] < w[1]),
        "FIFO within tenant"
    );

    let m = service.metrics();
    let shares: Vec<(String, u64)> = m
        .tenants
        .iter()
        .map(|t| (t.name.clone(), t.completed))
        .collect();
    assert_eq!(shares, vec![("alice".into(), 90), ("bob".into(), 90)]);
    service.drain();
}

#[test]
fn priorities_jump_the_tenant_queue() {
    let service = ServiceConfig::new()
        .pool(1)
        .cluster(det_builder(1))
        .hold()
        .record_dispatch(true)
        .build()
        .expect("service");
    let low: Vec<_> = (0..3)
        .map(|_| {
            service
                .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit))
                .expect("admit")
        })
        .collect();
    let urgent = service
        .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).priority(5))
        .expect("admit urgent");
    let urgent_id = urgent.id();
    service.open();
    for t in low {
        t.wait();
    }
    urgent.wait();
    let log = service.dispatch_log();
    assert_eq!(log[0].1, urgent_id, "priority 5 dispatches first: {log:?}");
    service.drain();
}

// ----------------------------------------------------------------------
// Admission control: every rejection is typed, and rejection points are
// deterministic on a held service.
// ----------------------------------------------------------------------

#[test]
fn admission_rejections_are_typed_and_deterministic() {
    let service = ServiceConfig::new()
        .pool(1)
        .queue_bound(8)
        .cluster(det_builder(1))
        .tenant("a", 1)
        .hold()
        .build()
        .expect("service");

    let mut tickets = Vec::new();
    for i in 0..11 {
        match service.submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant("a")) {
            Ok(t) => {
                assert!(i < 8, "job {i} must have been rejected");
                tickets.push(t);
            }
            Err(r) => {
                assert!(i >= 8, "job {i} must have been admitted");
                assert_eq!(r, Rejected::QueueFull { depth: 8, bound: 8 });
                assert_eq!(r.kind(), "queue_full");
            }
        }
    }

    // Unknown tenant / unknown registered closure are their own kinds.
    assert!(matches!(
        service.submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant("ghost")),
        Err(Rejected::UnknownTenant(t)) if t == "ghost"
    ));
    assert!(matches!(
        service.submit(JobRequest::named("nope").tenant("a")),
        Err(Rejected::UnknownProgram(p)) if p == "nope"
    ));

    // A zero deadline is unmeetable by definition.
    assert!(matches!(
        service.submit(
            JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit)
                .tenant("a")
                .deadline(Duration::ZERO)
        ),
        Err(Rejected::DeadlineUnmeetable { .. })
    ));

    // Draining rejects everything new, while admitted jobs finish.
    service.open();
    service.begin_drain();
    assert!(matches!(
        service.submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant("a")),
        Err(Rejected::Draining)
    ));
    for t in tickets {
        assert!(t.wait().outcome.is_ok(), "admitted jobs complete the drain");
    }
    let m = service.metrics();
    assert_eq!(m.admitted(), 8);
    assert_eq!(m.completed(), 8);
    // ghost is not in the count: an unknown tenant has no metrics row.
    assert_eq!(
        m.rejected(),
        6,
        "3 queue_full + nope + zero deadline + draining"
    );
    service.drain();
}

#[test]
fn expired_deadlines_fail_fast_with_a_diagnostic() {
    let service = ServiceConfig::new()
        .pool(1)
        .cluster(det_builder(1))
        .hold()
        .build()
        .expect("service");
    let doomed = service
        .submit(
            JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit)
                .deadline(Duration::from_millis(1)),
        )
        .expect("admitted: the service has no completion estimate yet");
    let healthy = service
        .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Num(7.0)))
        .expect("admit");
    // Let the deadline lapse while held, then open.
    std::thread::sleep(Duration::from_millis(30));
    service.open();

    let report = doomed.wait();
    match report.outcome {
        Err(JobError::DeadlineExpired {
            deadline_ms,
            waited_ms,
            diagnostic,
        }) => {
            assert_eq!(deadline_ms, 1.0);
            assert!(waited_ms >= 1.0, "waited {waited_ms} ms");
            assert!(diagnostic.contains("expired in queue"), "{diagnostic}");
        }
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    assert_eq!(
        report.service_host,
        Duration::ZERO,
        "never occupied a cluster"
    );
    assert_eq!(
        healthy.wait().outcome.expect("healthy job").result,
        JobValue::Num(7.0)
    );
    let m = service.metrics();
    assert_eq!(m.expired(), 1);
    assert_eq!(m.completed(), 1);
    service.drain();
}

// ----------------------------------------------------------------------
// Panic containment: a job panic kills its cluster, not the service.
// ----------------------------------------------------------------------

#[test]
fn job_panics_are_contained_and_the_pool_self_heals() {
    let service = ServiceConfig::new()
        .pool(1)
        .cluster(det_builder(1))
        .build()
        .expect("service");
    let bad = service
        .submit(JobRequest::closure(|_: &mut Env<'_>| -> JobValue {
            panic!("boom in job body")
        }))
        .expect("admit");
    match bad.wait().outcome {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("boom"), "{msg}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    // The single pool slot rebuilt its cluster; the next job completes.
    let next = service
        .submit(JobRequest::closure(det_body))
        .expect("admit after panic");
    assert!(next.wait().outcome.is_ok(), "pool self-healed");
    let summary = service.drain();
    assert_eq!((summary.completed, summary.failed), (1, 1));
}

// ----------------------------------------------------------------------
// Metrics: the new service families export cleanly and add up.
// ----------------------------------------------------------------------

#[test]
fn service_metrics_export_validates_and_balances() {
    let service = ServiceConfig::new()
        .pool(2)
        .queue_bound(4)
        .cluster(det_builder(1))
        .tenant("a", 3)
        .tenant("b", 1)
        .hold()
        .build()
        .expect("service");
    let mut tickets = Vec::new();
    for tenant in ["a", "a", "a", "b"] {
        tickets.push(
            service
                .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant(tenant))
                .expect("admit"),
        );
    }
    // One deterministic queue-full reject.
    assert!(service
        .submit(JobRequest::closure(|_: &mut Env<'_>| JobValue::Unit).tenant("b"))
        .is_err());
    service.open();
    for t in tickets {
        t.wait();
    }

    let m = service.metrics();
    let prom = m.to_prometheus();
    now_metrics::validate_prometheus_text(&prom).expect("prometheus export validates");
    let json = m.to_json();
    now_metrics::validate_json(&json).expect("json export validates");
    for family in [
        "now_service_queue_depth",
        "now_service_jobs_in_flight",
        "now_service_jobs_total",
        "now_service_rejected_total",
        "now_service_queue_wait_host_ns",
        "now_service_time_host_ns",
        "now_service_e2e_host_ns",
    ] {
        assert!(prom.contains(family), "missing family {family}");
    }
    assert!(prom.contains("tenant=\"a\""), "tenant label present");
    assert_eq!(m.admitted(), 4);
    assert_eq!(m.completed(), 4);
    assert_eq!(m.rejected(), 1);
    assert_eq!(
        m.queue_wait_merged().count(),
        4,
        "every dispatch recorded a wait"
    );
    assert_eq!(m.service_host_merged().count(), 4);
    assert_eq!(m.e2e_host_ns.count(), 4);
    service.drain();
}

// ----------------------------------------------------------------------
// TCP front door: line-delimited JSON submit/status/drain.
// ----------------------------------------------------------------------

#[test]
fn tcp_front_door_serves_submit_status_drain() {
    let service = ServiceConfig::new()
        .pool(1)
        .cluster(det_builder(1))
        .tenant("a", 2)
        .tenant("b", 1)
        .closure("answer", || Box::new(|_: &mut Env<'_>| JobValue::Num(42.0)))
        .build()
        .expect("service");
    let front = now_service::TcpFront::bind(service.handle(), "127.0.0.1:0").expect("bind");

    let sock = std::net::TcpStream::connect(front.addr()).expect("connect");
    let mut reader = BufReader::new(sock.try_clone().expect("clone"));
    let mut send = |line: &str| -> String {
        let mut sock = &sock;
        sock.write_all(line.as_bytes()).expect("write");
        sock.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        now_metrics::validate_json(reply.trim()).expect("reply is valid JSON");
        reply
    };

    // A registered closure, awaited inline.
    let r = send(r#"{"op":"submit","closure":"answer","tenant":"a","wait":true}"#);
    assert!(
        r.contains("\"ok\":true") && r.contains("\"value\":42"),
        "{r}"
    );

    // A .omp program over the wire.
    let r = send(
        r#"{"op":"submit","omp":"double x; int main() { x = 6 * 7; return 0; }","tenant":"b","wait":true}"#,
    );
    assert!(r.contains("\"scalars\":{\"x\":42}"), "{r}");

    // Typed protocol errors.
    let r = send(r#"{"op":"submit","closure":"ghost","wait":true}"#);
    assert!(r.contains("\"error\":\"unknown_program\""), "{r}");
    let r = send(r#"{"op":"submit","omp":"int main() { return 1 +; }"}"#);
    assert!(r.contains("\"error\":\"compile\""), "{r}");
    let r = send(r#"{"op":"warp"}"#);
    assert!(r.contains("\"error\":\"bad_request\""), "{r}");
    let r = send("not json");
    assert!(r.contains("\"error\":\"bad_json\""), "{r}");

    // Status and metrics verbs.
    let r = send(r#"{"op":"status"}"#);
    assert!(
        r.contains("\"pool\":1") && r.contains("\"name\":\"a\""),
        "{r}"
    );
    let r = send(r#"{"op":"metrics"}"#);
    assert!(r.contains("now-service-metrics-v1"), "{r}");

    // Drain over the wire: stops admission, finishes in-flight work.
    let r = send(r#"{"op":"drain"}"#);
    assert!(
        r.contains("\"drained\":true") && r.contains("\"completed\":2"),
        "{r}"
    );
    let r = send(r#"{"op":"submit","closure":"answer"}"#);
    assert!(r.contains("\"error\":\"draining\""), "{r}");

    drop(sock);
    front.shutdown();
    service.drain();
}
