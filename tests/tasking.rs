//! Cross-crate tests of the distributed tasking runtime: the task-based
//! application variants must reproduce the sequential results on every
//! cluster size, under both scheduling policies, with the tasking
//! counters telling a coherent story.

use nomp::{OmpConfig, TaskSched};
use now_apps::{qsort, tsp};

#[test]
fn qsort_task_checksums_match_seq_on_2_4_8_nodes() {
    let cfg = qsort::QsortConfig::test();
    let seq = qsort::run_seq(&cfg, 1.0);
    for nodes in [2usize, 4, 8] {
        for sched in [TaskSched::WorkSteal, TaskSched::Centralized] {
            let r = qsort::run_task_sched(&cfg, OmpConfig::fast_test(nodes), sched);
            assert_eq!(r.checksum, seq.checksum, "qsort {sched:?} @ {nodes} nodes");
        }
    }
}

#[test]
fn tsp_task_checksums_match_seq_on_2_4_8_nodes() {
    let cfg = tsp::TspConfig::test();
    let seq = tsp::run_seq(&cfg, 1.0);
    for nodes in [2usize, 4, 8] {
        for sched in [TaskSched::WorkSteal, TaskSched::Centralized] {
            let r = tsp::run_task_sched(&cfg, OmpConfig::fast_test(nodes), sched);
            assert_eq!(r.checksum, seq.checksum, "tsp {sched:?} @ {nodes} nodes");
        }
    }
}

#[test]
fn task_counters_are_coherent() {
    let cfg = qsort::QsortConfig::test();
    let (_, stats) = qsort::run_task_stats(&cfg, OmpConfig::fast_test(4), TaskSched::WorkSteal);
    assert!(stats.tasks_spawned > 0, "tasks were spawned");
    assert_eq!(
        stats.tasks_executed, stats.tasks_spawned,
        "every spawned task executes exactly once"
    );
    assert!(stats.tasks_stolen <= stats.tasks_executed);
    assert!(
        stats.steal_attempts >= stats.tasks_stolen,
        "every steal is preceded by an attempt"
    );
}

#[test]
fn centralized_mode_never_steals() {
    let cfg = tsp::TspConfig::test();
    let (_, stats) = tsp::run_task_stats(&cfg, OmpConfig::fast_test(3), TaskSched::Centralized);
    assert_eq!(stats.tasks_stolen, 0);
    assert_eq!(stats.steal_attempts, 0);
    assert_eq!(stats.tasks_executed, stats.tasks_spawned);
}

#[test]
fn tiny_pages_stress_the_deque_protocol() {
    // 64-byte pages put deque header and slots on separate pages with
    // maximal cross-node invalidation churn — the regime that exposed the
    // promise-clock consistency bug this runtime's development fixed.
    let cfg = qsort::QsortConfig {
        n: 2048,
        bubble_threshold: 64,
        seed: 11,
    };
    let seq = qsort::run_seq(&cfg, 1.0);
    let mut sys = OmpConfig::fast_test(4);
    sys.tmk = tmk::TmkConfig::stress_tiny_pages(4);
    let r = qsort::run_task(&cfg, sys);
    assert_eq!(r.checksum, seq.checksum);
}

#[test]
fn gc_stress_with_tasking() {
    let cfg = tsp::TspConfig::test();
    let seq = tsp::run_seq(&cfg, 1.0);
    let mut sys = OmpConfig::fast_test(3);
    sys.tmk.gc_every_barrier = true;
    let r = tsp::run_task(&cfg, sys);
    assert_eq!(r.checksum, seq.checksum);
}
