//! Heterogeneous-NOW integration tests: load-model determinism, the
//! adaptive/affinity schedules through the whole stack, `.omp` program
//! results invariant under heterogeneity, and the runner's CLI surface.

use nomp::{Cluster, ClusterLoad, Env, LoadTrace, OmpConfig, Schedule, TmkStats};
use openmp_now::cli::RunnerArgs;

// ----------------------------------------------------------------------
// Determinism: same load seed ⇒ identical message counts AND virtual
// times across runs.
// ----------------------------------------------------------------------

/// A configuration whose virtual times are order-robust: measured
/// compute contributes nothing (`compute_scale = 0`) and per-message CPU
/// costs are zero, so every timestamp is a deterministic function of the
/// modeled protocol costs, the message latencies, and the load model.
/// The heterogeneity model still bites through the modeled DSM charges
/// (twin/diff costs), which stretch on slowed nodes.
fn det_cfg(nodes: usize, tpn: usize, load: ClusterLoad) -> OmpConfig {
    let mut c = OmpConfig::fast_test_smp(nodes, tpn);
    c.tmk.net.compute_scale = 0.0;
    c.tmk.net.send_overhead_ns = 0;
    c.tmk.net.handler_ns = 0;
    c.tmk.net.local_delivery_ns = 0;
    c.with_load(load)
}

/// Barrier-structured workload with deterministic traffic: every thread
/// push-writes its own page-disjoint slab (no fetch, twins charged in
/// program order), the region join synchronizes, and the master reads
/// everything back (sequenced faults).
fn det_run(cfg: OmpConfig) -> (u64, TmkStats, u64, Vec<u64>) {
    const SLAB: usize = 512; // one 4 KiB page of u64s per thread
    let out = Cluster::from_config(cfg)
        .run(|omp: &mut Env<'_>| {
            let nthreads = omp.num_threads();
            let data = omp.malloc_vec::<u64>(nthreads * SLAB);
            omp.parallel(move |t| {
                let me = t.thread_num();
                let vals: Vec<u64> = (0..SLAB).map(|i| (me * SLAB + i) as u64).collect();
                t.write_slice_push(&data, me * SLAB, &vals);
            });
            omp.read_slice(&data, 0..nthreads * SLAB)
        })
        .expect("cluster job");
    (out.vt_ns, out.dsm.clone(), out.msgs(), out.result)
}

#[test]
fn same_load_seed_is_bit_deterministic_across_topologies() {
    // n×1 with base speeds AND a seeded burst trace; 2×2 with base
    // speeds (SMP gate interleaving commutes only under constant
    // per-node factors).
    let loaded_4x1 = ClusterLoad {
        speeds: vec![1.0, 0.5, 1.0, 0.8],
        traces: vec![
            LoadTrace::Flat,
            LoadTrace::Flat,
            LoadTrace::Burst {
                period_ns: 500,
                busy_ns: 200,
                slowdown: 3.0,
            },
            LoadTrace::Flat,
        ],
        seed: 7,
    };
    let loaded_2x2 = ClusterLoad::with_speeds(vec![1.0, 0.5]);
    for (nodes, tpn, load) in [(4usize, 1usize, loaded_4x1), (2, 2, loaded_2x2)] {
        let expect: Vec<u64> = (0..nodes * tpn * 512).map(|i| i as u64).collect();
        let (vt1, dsm1, msgs1, data1) = det_run(det_cfg(nodes, tpn, load.clone()));
        let (vt2, dsm2, msgs2, data2) = det_run(det_cfg(nodes, tpn, load.clone()));
        assert_eq!(data1, expect, "{nodes}x{tpn}: wrong data");
        assert_eq!(data2, expect, "{nodes}x{tpn}: wrong data (run 2)");
        assert_eq!(vt1, vt2, "{nodes}x{tpn}: virtual times must be identical");
        assert_eq!(dsm1, dsm2, "{nodes}x{tpn}: TmkStats must be identical");
        assert_eq!(
            msgs1, msgs2,
            "{nodes}x{tpn}: message counts must be identical"
        );

        // Sanity: the model actually bites — a loaded cluster is slower
        // than the uniform one, with identical traffic.
        let (vt_u, _, msgs_u, data_u) = det_run(det_cfg(nodes, tpn, ClusterLoad::uniform()));
        assert_eq!(data_u, expect);
        assert_eq!(msgs_u, msgs1, "{nodes}x{tpn}: load must not change traffic");
        assert!(
            vt1 > vt_u,
            "{nodes}x{tpn}: loaded run ({vt1} ns) must be slower than uniform ({vt_u} ns)"
        );
    }
}

// ----------------------------------------------------------------------
// Adaptive / affinity through the directive front-end.
// ----------------------------------------------------------------------

const DOT_ADAPTIVE: &str = r#"
double a[4096];
double b[4096];
double dot;
int main() {
    for (int i = 0; i < 4096; i = i + 1) {
        a[i] = 0.5 + i % 17;
        b[i] = 1.0 / (1 + i % 13);
    }
    dot = 0.0;
    #pragma omp parallel for reduction(+:dot) schedule(adaptive, 8)
    for (int i = 0; i < 4096; i = i + 1) {
        dot = dot + a[i] * b[i];
    }
    print("dot = ", dot);
    return 0;
}
"#;

const DOT_AFFINITY: &str = r#"
double a[4096];
double b[4096];
double dot;
int main() {
    for (int i = 0; i < 4096; i = i + 1) {
        a[i] = 0.5 + i % 17;
        b[i] = 1.0 / (1 + i % 13);
    }
    dot = 0.0;
    #pragma omp parallel for reduction(+:dot) schedule(affinity)
    for (int i = 0; i < 4096; i = i + 1) {
        dot = dot + a[i] * b[i];
    }
    print("dot = ", dot);
    return 0;
}
"#;

fn native_dot() -> f64 {
    (0..4096)
        .map(|i| (0.5 + (i % 17) as f64) * (1.0 / (1 + i % 13) as f64))
        .sum()
}

#[test]
fn ompc_accepts_adaptive_and_affinity_schedules() {
    for (name, src) in [("adaptive", DOT_ADAPTIVE), ("affinity", DOT_AFFINITY)] {
        for (nodes, tpn) in [(4usize, 1usize), (2, 2)] {
            let prog = ompc::compile(src).unwrap_or_else(|d| panic!("{name} must compile: {d}"));
            let mut cluster = Cluster::builder()
                .nodes(nodes)
                .threads_per_node(tpn)
                .fast_test()
                .build()
                .expect("valid cluster");
            let out = cluster.run(prog).expect("cluster job");
            let got = out.result.scalars["dot"];
            assert!(
                (got - native_dot()).abs() < 1e-9,
                "{name} on {nodes}x{tpn}: {got} != {}",
                native_dot()
            );
        }
    }
}

#[test]
fn runtime_schedule_resolves_to_adaptive_and_affinity() {
    // `schedule(runtime)` loops driven by OMP_SCHEDULE-style strings for
    // the new kinds, end to end through the runner's config path.
    const RUNTIME_LOOP: &str = r#"
double acc;
int main() {
    acc = 0.0;
    #pragma omp parallel for reduction(+:acc) schedule(runtime)
    for (int i = 0; i < 1000; i = i + 1) {
        acc = acc + i;
    }
    return acc;
}
"#;
    for sched in ["adaptive,4", "affinity"] {
        let mut cluster = Cluster::builder()
            .nodes(3)
            .fast_test()
            .runtime_schedule_str(sched)
            .build()
            .expect("valid cluster");
        let prog =
            ompc::compile(RUNTIME_LOOP).unwrap_or_else(|d| panic!("{sched}: must compile: {d}"));
        let out = cluster.run(prog).expect("cluster job");
        assert_eq!(out.result.ret, 499_500.0, "{sched}");
    }
}

#[test]
fn ompc_rejects_affinity_chunk() {
    let src = "int main() { #pragma omp for schedule(affinity, 4)\nfor (int i=0;i<3;i=i+1){} }";
    let err = match ompc::compile(src) {
        Err(d) => d,
        Ok(_) => panic!("schedule(affinity, 4) must be rejected"),
    };
    assert!(
        err.to_string().contains("affinity"),
        "diagnostic must name the clause: {err}"
    );
    // The spanned Diag nests in the unified error type, so `?` composes
    // compile + run end to end.
    let unified: nomp::NowError = err.into();
    assert!(matches!(unified, nomp::NowError::Compile(_)));
}

// ----------------------------------------------------------------------
// Existing example programs are invariant under heterogeneity.
// ----------------------------------------------------------------------

#[test]
fn bundled_omp_programs_unchanged_on_heterogeneous_clusters() {
    let programs = [
        ("pi", include_str!("../examples/omp/pi.omp")),
        ("dotprod", include_str!("../examples/omp/dotprod.omp")),
        ("jacobi", include_str!("../examples/omp/jacobi.omp")),
        ("fib", include_str!("../examples/omp/fib.omp")),
        ("qsort", include_str!("../examples/omp/qsort.omp")),
    ];
    let load = ClusterLoad {
        speeds: vec![1.0, 0.5, 1.0, 0.75],
        traces: vec![LoadTrace::Flat; 4],
        seed: 3,
    };
    // Two warm clusters — uniform and loaded — each running all five
    // programs as a job stream.
    let mut uni_cluster = Cluster::builder().nodes(4).fast_test().build().unwrap();
    let mut het_cluster = Cluster::builder()
        .nodes(4)
        .fast_test()
        .load_model(load)
        .build()
        .unwrap();
    for (name, src) in programs {
        let prog = ompc::compile(src).unwrap_or_else(|d| panic!("{name} must compile: {d}"));
        let uni = uni_cluster.run(&prog).expect("cluster job").result;
        let het = het_cluster.run(&prog).expect("cluster job").result;
        assert_eq!(uni.ret, het.ret, "{name}: exit value changed under load");
        for (k, v) in &uni.scalars {
            let h = het.scalars[k];
            assert!(
                (v - h).abs() <= 1e-9 * v.abs().max(1.0),
                "{name}: scalar {k} changed under load ({v} vs {h})"
            );
        }
        // (That the load model slows virtual time down is asserted in
        // `same_load_seed_is_bit_deterministic_across_topologies`, whose
        // configuration makes timestamps order-robust; at fast_test
        // scale host-compute noise between two separate runs can exceed
        // the load effect, so no timing comparison here.)
    }
}

// ----------------------------------------------------------------------
// Runner CLI surface (satellite: --speeds / --load / --load-seed).
// ----------------------------------------------------------------------

fn argv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

#[test]
fn runner_cli_parses_hetero_flags() {
    let a = RunnerArgs::parse(&argv(&[
        "--nodes",
        "4",
        "--speeds",
        "1.0,0.5,1.0,1.0",
        "--load",
        "burst:40/10x3",
        "--load-seed",
        "7",
        "--schedule",
        "adaptive,8",
        "prog.omp",
    ]))
    .expect("valid args");
    assert_eq!(a.nodes, 4);
    assert_eq!(a.schedule, Some(Schedule::Adaptive(8)));
    assert_eq!(a.load_seed, 7);
    assert_eq!(a.files, vec!["prog.omp".to_string()]);
    let load = a.cluster_load().expect("valid load");
    assert!(!load.is_uniform());
    assert_eq!(load.speeds, vec![1.0, 0.5, 1.0, 1.0]);
    assert_eq!(load.traces.len(), 4);
    assert_eq!(load.seed, 7);

    // Defaults: uniform, dedicated, 4 nodes, one run per program.
    let d = RunnerArgs::parse(&[]).unwrap();
    assert_eq!(d.nodes, 4);
    assert_eq!(d.repeat, 1);
    assert!(d.cluster_load().unwrap().is_uniform());
}

#[test]
fn runner_cli_parses_repeat_and_builds_a_warm_cluster() {
    let a = RunnerArgs::parse(&argv(&[
        "--nodes",
        "2",
        "--repeat",
        "3",
        "--schedule",
        "guided,8",
        "x.omp",
    ]))
    .expect("valid args");
    assert_eq!(a.repeat, 3);
    // The arguments describe a buildable warm cluster, which then runs
    // each file `repeat` times (exercised end to end below and by the
    // omp_runner example itself).
    let mut cluster = a.cluster().expect("valid cluster config");
    assert_eq!(cluster.topology(), "2x1");
    assert_eq!(cluster.config().runtime_schedule, Schedule::Guided(8));
    let prog = ompc::compile("int main() { return 40 + 2; }").expect("compiles");
    for rep in 0..a.repeat {
        let out = cluster.run(&prog).expect("cluster job");
        assert_eq!(out.result.ret, 42.0, "repetition {rep}");
        assert_eq!(out.job, rep, "jobs are numbered on the warm cluster");
    }
}

#[test]
fn runner_cli_rejects_malformed_specs_with_clear_messages() {
    // Every malformed spec must produce an error (which omp_runner maps
    // to exit code 2) whose message names the offending flag.
    let cases: &[(&[&str], &str)] = &[
        (&["--speeds", "1.0,zero"], "--speeds"),
        (&["--speeds", ""], "--speeds"),
        (&["--speeds"], "--speeds"),
        (&["--nodes", "2", "--speeds", "1.0,1.0,1.0"], "--speeds"),
        (&["--load", "tsunami:1/1x2"], "--load"),
        (&["--load", "step:1x2"], "--load"),
        (&["--load", "phase:5/9x2"], "--load"),
        (&["--load-seed", "seven"], "--load-seed"),
        (&["--nodes", "0"], "--nodes"),
        (&["--schedule", "fractal"], "--schedule"),
        (&["--repeat", "0"], "--repeat"),
        (&["--repeat", "three"], "--repeat"),
        (&["--repeat"], "--repeat"),
        // Observability flags: --trace needs a real file path.
        (&["--trace"], "--trace"),
        (&["--trace", ""], "--trace"),
        (&["--trace", "--profile"], "--trace"),
        (&["--trace", "out/"], "--trace"),
        // Typos in flag names must be rejected, not treated as files.
        (&["--load-sed", "7", "prog.omp"], "--load-sed"),
        (&["--speeds=1.0,0.5"], "--speeds=1.0,0.5"),
    ];
    for (args, needle) in cases {
        let e = RunnerArgs::parse(&argv(args)).expect_err(&format!("{args:?} must fail"));
        assert!(
            e.contains(needle),
            "{args:?}: message `{e}` must mention {needle}"
        );
    }
    // A step trace targeting a node outside the cluster fails at
    // cluster_load time.
    let a = RunnerArgs::parse(&argv(&["--nodes", "2", "--load", "step:5@1x2"])).unwrap();
    let e = a.cluster_load().expect_err("out-of-range step must fail");
    assert!(e.contains("node 5"), "{e}");
}
