//! CI smoke test for the cluster-pool service: bring up a pool behind
//! the TCP front door, push a mixed closure/`.omp` batch from a real
//! socket client as two weighted tenants, drain over the wire, and
//! assert the end-to-end contracts:
//!
//! * every admitted job completes (drain reply totals balance);
//! * weighted fair share: with both tenants backlogged at 2:1 weights,
//!   alice's share of the first dispatch window is 2/3 (asserted with
//!   wide margins — this is a smoke, the exact-window test lives in
//!   `tests/service.rs`);
//! * the service metrics families export clean Prometheus text and
//!   JSON (validated in-process).
//!
//! CI runs this under `NOW_WATCHDOG_SECS` so a drain that stops making
//! progress aborts with a state dump instead of hanging the lane:
//!
//! ```text
//! NOW_WATCHDOG_SECS=30 cargo run --release --example service_smoke
//! ```

use openmp_now::nomp::{validate_metrics_json, validate_prometheus_text, Cluster, Env};
use openmp_now::now_service::{JobValue, ServiceConfig, TcpFront};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

const PI_SRC: &str = r#"
double pi;
int main() {
    int n = 100;
    double step = 1.0 / n;
    #pragma omp parallel for reduction(+:pi) schedule(static)
    for (int i = 0; i < n; i = i + 1) {
        double x = (i + 0.5) * step;
        pi = pi + 4.0 / (1.0 + x * x);
    }
    pi = pi * step;
    return 0;
}
"#;

const BATCH: usize = 120;

fn main() {
    // Held + dispatch-recording: jobs queue until the drain verb
    // releases them, so both tenants are saturated when dispatch starts
    // and the fair-share window is observable.
    let service = ServiceConfig::new()
        .pool(2)
        .queue_bound(BATCH + 8)
        .cluster(Cluster::builder().nodes(2).fast_test())
        .tenant("alice", 2)
        .tenant("bob", 1)
        .closure("touch", || {
            Box::new(|omp: &mut Env<'_>| JobValue::Num(omp.num_threads() as f64))
        })
        .hold()
        .record_dispatch(true)
        .build()
        .expect("service comes up");
    let front = TcpFront::bind(service.handle(), "127.0.0.1:0").expect("tcp front binds");
    println!("service_smoke: pool 2 on {}", front.addr());

    let sock = TcpStream::connect(front.addr()).expect("client connects");
    let mut reader = BufReader::new(sock.try_clone().expect("clone socket"));
    let mut out = sock;
    let mut send = |line: &str| -> String {
        out.write_all(line.as_bytes()).expect("send");
        out.write_all(b"\n").expect("send newline");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        reply
    };

    // Mixed batch over the wire: even jobs to alice, odd to bob (equal
    // offered load; the *weights* decide the dispatch shares), and every
    // 8th job a compiled-on-the-server .omp program instead of the
    // registered closure.
    // Escape the newlines for the wire: pragmas are line-based, so the
    // server must see the source with its line structure intact.
    let pi_line = PI_SRC.replace('\n', "\\n");
    for i in 0..BATCH {
        let tenant = if i % 2 == 0 { "alice" } else { "bob" };
        let line = if i % 8 == 0 {
            format!("{{\"op\":\"submit\",\"omp\":\"{pi_line}\",\"tenant\":\"{tenant}\"}}")
        } else {
            format!("{{\"op\":\"submit\",\"closure\":\"touch\",\"tenant\":\"{tenant}\"}}")
        };
        let reply = send(&line);
        assert!(reply.contains("\"ok\":true"), "job {i} admitted: {reply}");
    }

    let status = send("{\"op\":\"status\"}");
    assert!(
        status.contains("\"queue_depth\":120"),
        "held queue: {status}"
    );

    // Drain over the wire: releases the held queue, finishes every job.
    let drained = send("{\"op\":\"drain\"}");
    assert!(drained.contains("\"drained\":true"), "{drained}");
    assert!(drained.contains("\"completed\":120"), "{drained}");
    assert!(drained.contains("\"rejected\":0"), "{drained}");
    println!("service_smoke: drained 120/120 over TCP");

    // Weighted fair share, wide margins: alice (weight 2) must own
    // about 2/3 of the first 90 dispatches while both backlogs last.
    let log = service.dispatch_log();
    let alice_early = log
        .iter()
        .take(90)
        .filter(|(tenant, _)| tenant == "alice")
        .count();
    let share = alice_early as f64 / 90.0;
    assert!(
        (0.60..=0.733).contains(&share),
        "alice's early dispatch share {share:.3} strays from 2:1 weighting"
    );
    println!("service_smoke: alice early-window share {share:.3} (2:1 weights)");

    // The new service metrics families validate in both export formats.
    let snap = service.metrics();
    let prom = snap.to_prometheus();
    validate_prometheus_text(&prom).expect("Prometheus exposition validates");
    for family in [
        "now_service_queue_depth",
        "now_service_jobs_total",
        "now_service_rejected_total",
        "now_service_queue_wait_host_ns",
        "now_service_time_host_ns",
        "now_service_e2e_host_ns",
    ] {
        assert!(prom.contains(family), "missing family {family}");
    }
    let json = snap.to_json();
    validate_metrics_json(&json).expect("JSON export validates");
    println!("service_smoke: metrics exports validate");

    drop(out);
    drop(reader);
    front.shutdown();
    service.drain();
    println!("service_smoke: ok");
}
