//! Sweep3D across all four implementations: the paper's pipelined
//! wavefront with semaphores, on OpenMP, hand-coded TreadMarks and MPI.
//!
//! Run with: `cargo run --release --example sweep3d_now`

use now_apps::sweep3d::*;
use openmp_now::prelude::*;

fn main() {
    let cfg = SweepConfig {
        nx: 24,
        ny: 24,
        nz: 24,
        n_ang: 4,
        x_blocks: 6,
        n_sweeps: 1,
    };
    let nodes = 8;
    let seq = run_seq(&cfg, 60.0);
    let omp = run_omp(&cfg, nomp::OmpConfig::paper(nodes));
    let tmkv = run_tmk(&cfg, TmkConfig::paper(nodes));
    let mpi = run_mpi(&cfg, nowmpi::MpiConfig::paper(nodes));
    for r in [&omp, &tmkv, &mpi] {
        assert!(
            ((r.checksum - seq.checksum) / seq.checksum).abs() < 1e-9,
            "{} result mismatch",
            r.version.label()
        );
    }
    println!(
        "Sweep3D {}x{}x{}, {} angles/octant, {} pipeline stages, {nodes} workstations\n",
        cfg.nx, cfg.ny, cfg.nz, cfg.n_ang, cfg.x_blocks
    );
    println!("version   model-s  speedup  messages      MB");
    println!(
        "seq      {:>8.3}     1.00         0    0.00",
        seq.vt_seconds()
    );
    for r in [&omp, &tmkv, &mpi] {
        println!(
            "{:<7}  {:>8.3}  {:>7.2}  {:>8}  {:>6.2}",
            r.version.label(),
            r.vt_seconds(),
            r.speedup_vs(&seq),
            r.msgs,
            r.mbytes()
        );
    }
}
