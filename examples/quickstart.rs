//! Quickstart: an OpenMP program running on a simulated 4-workstation
//! network — parallel initialization, a reduction, and the traffic the
//! DSM needed to make it happen, through the `Cluster` session API.
//!
//! Run with: `cargo run --example quickstart`
//!
//! With `--trace <path>` the run also records virtual-time events and
//! writes a Chrome-trace JSON (self-validated against the trace-event
//! schema — the CI step that runs this example relies on that check).
//! With `--metrics <path>` / `--metrics-json <path>` it exports the
//! cluster's always-on lifetime metrics (self-validated against the
//! Prometheus text format / JSON grammar, again for CI).

use openmp_now::prelude::*;

fn main() {
    let (mut trace_path, mut metrics_path, mut metrics_json_path) = (None, None, None);
    {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let slot = match flag.as_str() {
                "--trace" => &mut trace_path,
                "--metrics" => &mut metrics_path,
                "--metrics-json" => &mut metrics_json_path,
                other => {
                    eprintln!(
                        "usage: quickstart [--trace <path>] [--metrics <path>] \
                         [--metrics-json <path>], got `{other}`"
                    );
                    std::process::exit(2);
                }
            };
            match it.next() {
                Some(path) => *slot = Some(path.clone()),
                None => {
                    eprintln!("{flag} requires a path");
                    std::process::exit(2);
                }
            }
        }
    }

    let mut builder = Cluster::builder().nodes(4);
    if trace_path.is_some() {
        builder = builder.trace(TraceConfig::default());
    }
    let mut cluster = builder.build().expect("valid cluster");
    let out = cluster
        .run(|omp: &mut Env<'_>| {
            let n = 100_000;
            // Shared data must be explicit (the paper's Modification 1)...
            let a = omp.malloc_vec::<f64>(n);
            // ...while anything captured by value is firstprivate:
            let scale = 3.0f64;

            // !$omp parallel do
            omp.parallel_for_chunks(Schedule::Static, 0..n, move |t, r| {
                t.view_mut(&a, r.clone(), |chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = scale * (r.start + k) as f64;
                    }
                });
            });

            // !$omp parallel do reduction(+: sum)
            omp.parallel_reduce(
                Schedule::Static,
                0..n,
                RedOp::Sum,
                move |t, i, acc: &mut f64| {
                    *acc += t.read(&a, i);
                },
            )
        })
        .expect("cluster job");

    let n = 100_000u64;
    let expect = 3.0 * (n * (n - 1) / 2) as f64;
    println!(
        "sum            = {:.6e} (expected {:.6e})",
        out.result, expect
    );
    println!(
        "virtual time   = {:.3} s on the modeled 1998 cluster",
        out.vt_seconds()
    );
    println!(
        "network        = {} messages, {:.2} MB",
        out.net.total_msgs(),
        out.net.total_mbytes()
    );
    println!(
        "DSM activity   = {} page faults, {} diffs created, {} twins",
        out.dsm.read_faults, out.dsm.diffs_created, out.dsm.twins_created
    );
    assert!((out.result - expect).abs() / expect < 1e-12);

    if let Some(path) = trace_path {
        let trace = out.trace.as_ref().expect("tracing was armed");
        let json = trace.to_chrome_json();
        openmp_now::nomp::validate_chrome_json(&json).expect("emitted trace validates");
        std::fs::write(&path, &json).expect("trace file writable");
        println!(
            "trace          = {} events -> {path} (Chrome trace-event JSON, validated)",
            trace.event_count()
        );
    }
    if metrics_path.is_some() || metrics_json_path.is_some() {
        let snap = cluster.metrics();
        if let Some(path) = metrics_path {
            let text = snap.to_prometheus();
            openmp_now::nomp::validate_prometheus_text(&text).expect("emitted metrics validate");
            std::fs::write(&path, &text).expect("metrics file writable");
            println!("metrics        = {path} (Prometheus text format, validated)");
        }
        if let Some(path) = metrics_json_path {
            let json = snap.to_json();
            openmp_now::nomp::validate_metrics_json(&json).expect("emitted metrics JSON validates");
            std::fs::write(&path, &json).expect("metrics file writable");
            println!("metrics json   = {path} (validated)");
        }
    }
}
