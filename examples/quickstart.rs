//! Quickstart: an OpenMP program running on a simulated 4-workstation
//! network — parallel initialization, a reduction, and the traffic the
//! DSM needed to make it happen, through the `Cluster` session API.
//!
//! Run with: `cargo run --example quickstart`

use openmp_now::prelude::*;

fn main() {
    let mut cluster = Cluster::builder().nodes(4).build().expect("valid cluster");
    let out = cluster
        .run(|omp: &mut Env| {
            let n = 100_000;
            // Shared data must be explicit (the paper's Modification 1)...
            let a = omp.malloc_vec::<f64>(n);
            // ...while anything captured by value is firstprivate:
            let scale = 3.0f64;

            // !$omp parallel do
            omp.parallel_for_chunks(Schedule::Static, 0..n, move |t, r| {
                t.view_mut(&a, r.clone(), |chunk| {
                    for (k, x) in chunk.iter_mut().enumerate() {
                        *x = scale * (r.start + k) as f64;
                    }
                });
            });

            // !$omp parallel do reduction(+: sum)
            omp.parallel_reduce(
                Schedule::Static,
                0..n,
                RedOp::Sum,
                move |t, i, acc: &mut f64| {
                    *acc += t.read(&a, i);
                },
            )
        })
        .expect("cluster job");

    let n = 100_000u64;
    let expect = 3.0 * (n * (n - 1) / 2) as f64;
    println!(
        "sum            = {:.6e} (expected {:.6e})",
        out.result, expect
    );
    println!(
        "virtual time   = {:.3} s on the modeled 1998 cluster",
        out.vt_seconds()
    );
    println!(
        "network        = {} messages, {:.2} MB",
        out.net.total_msgs(),
        out.net.total_mbytes()
    );
    println!(
        "DSM activity   = {} page faults, {} diffs created, {} twins",
        out.dsm.read_faults, out.dsm.diffs_created, out.dsm.twins_created
    );
    assert!((out.result - expect).abs() / expect < 1e-12);
}
