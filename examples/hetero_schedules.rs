//! Heterogeneous-NOW schedule sweep: run {static, dynamic, guided,
//! adaptive, affinity} × {uniform, one-2×-slow-node, bursty} on
//! pi/dotprod/jacobi, print the tables, assert the invariants (adaptive
//! and affinity must beat static on virtual wall time with a 2×-slow
//! node while paying strictly fewer DSM messages than dynamic), and emit
//! the machine-readable `BENCH_hetero.json`.
//!
//! ```text
//! cargo run --release --example hetero_schedules                # 4 nodes
//! cargo run --release --example hetero_schedules -- --nodes 8
//! cargo run --release --example hetero_schedules -- --out /tmp/h.json
//! ```

use now_bench::hetero;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 4usize;
    let mut out_path = "BENCH_hetero.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 2)
                    .expect("--nodes N (N >= 2)");
            }
            "--out" => {
                out_path = it.next().expect("--out PATH").clone();
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    // Prints the per-kernel tables and asserts the sweep's invariants —
    // a failed invariant panics, failing CI.
    let rows = hetero::hetero_table(nodes);
    let json = hetero::rows_to_json(nodes, &rows);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} rows to {out_path}", rows.len());
}
