//! The paper's Figure 4: a task queue built from a critical section and
//! one condition variable, driving a parallel quicksort.
//!
//! Run with: `cargo run --example task_queue`

use openmp_now::prelude::*;

fn main() {
    let cfg = now_apps::qsort::QsortConfig {
        n: 32 * 1024,
        bubble_threshold: 256,
        seed: 7,
    };
    let seq = now_apps::qsort::run_seq(&cfg, 60.0);
    println!(
        "QSORT, {} integers, bubble threshold {}:",
        cfg.n, cfg.bubble_threshold
    );
    println!("  sequential: {:.3} model-seconds", seq.vt_seconds());
    for nodes in [2usize, 4, 8] {
        let par = now_apps::qsort::run_omp(&cfg, OmpConfig::paper(nodes));
        assert_eq!(par.checksum, seq.checksum, "parallel sort must match");
        println!(
            "  {nodes} nodes: {:.3} s, speedup {:.2}, {} messages, {:.2} MB",
            par.vt_seconds(),
            par.speedup_vs(&seq),
            par.msgs,
            par.mbytes()
        );
    }
    println!("\nDeQueue blocks on cond_wait instead of busy-waiting; the nwait");
    println!("counter + cond_broadcast detect termination (paper, Figure 4).");
}
