//! SMP-cluster execution: run the bundled kernels on a
//! `nodes × threads_per_node` topology and report traffic.
//!
//! ```text
//! cargo run --release --example smp_topologies                 # sweep 8x1, 4x2, 2x4, 1x8
//! cargo run --release --example smp_topologies -- --topo 4x2   # one topology
//! ```
//!
//! Exits non-zero if any kernel's result diverges from its native
//! reference, or (in sweep mode) if DSM messages fail to fall as
//! threads move on-node. Kernel sources, the reference values, and the
//! per-topology runner are shared with `now_bench::smp` (the
//! `paper_tables -- smp` ablation).

use now_bench::smp::{native_reference, run_kernel, KERNELS, TOPOLOGIES};

fn parse_topo(s: &str) -> (usize, usize) {
    let parse = |p: &str| p.trim().parse::<usize>().ok().filter(|&v| v >= 1);
    let mut it = s.split('x');
    match (
        it.next().and_then(parse),
        it.next().and_then(parse),
        it.next(),
    ) {
        (Some(n), Some(t), None) => (n, t),
        _ => {
            eprintln!("invalid topology `{s}` (expected NODESxTHREADS, e.g. 4x2)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut topos: Vec<(usize, usize)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--topo" => topos.push(parse_topo(it.next().expect("--topo NxM"))),
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let sweep = topos.is_empty();
    if sweep {
        topos = TOPOLOGIES.to_vec();
    }

    let mut failed = false;
    for (name, src) in KERNELS {
        let expect = native_reference(name);
        println!("== {name} ==");
        let mut msgs = Vec::new();
        for &(nodes, tpn) in &topos {
            let row = run_kernel(name, src, nodes, tpn);
            let ok = (row.result - expect).abs() <= 1e-9 * expect.abs().max(1.0);
            println!(
                "  {nodes}x{tpn}: {:.3} virtual s, {} msgs, {:.2} MB{}",
                row.vt_ns as f64 / 1e9,
                row.msgs,
                row.bytes as f64 / 1e6,
                if ok { "" } else { "  MISMATCH" }
            );
            if !ok {
                eprintln!(
                    "  ERROR: {name} on {nodes}x{tpn}: {} vs reference {expect}",
                    row.result
                );
                failed = true;
            }
            msgs.push(row.msgs);
        }
        if sweep {
            if !msgs.windows(2).all(|w| w[0] > w[1]) {
                eprintln!("  ERROR: {name}: messages did not fall on-node: {msgs:?}");
                failed = true;
            }
            if msgs.last() != Some(&0) {
                eprintln!("  ERROR: {name}: 1x8 sent remote messages");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
