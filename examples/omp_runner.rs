//! Run `.omp` programs through the `ompc` front-end on the simulated
//! workstation network.
//!
//! ```text
//! cargo run --release --example omp_runner                  # all bundled examples, 4 nodes
//! cargo run --release --example omp_runner -- --nodes 8     # all, 8 nodes
//! cargo run --release --example omp_runner -- my.omp        # one file
//! ```

use nomp::OmpConfig;

const BUNDLED: &[(&str, &str)] = &[
    ("pi.omp", include_str!("omp/pi.omp")),
    ("dotprod.omp", include_str!("omp/dotprod.omp")),
    ("jacobi.omp", include_str!("omp/jacobi.omp")),
    ("fib.omp", include_str!("omp/fib.omp")),
    ("qsort.omp", include_str!("omp/qsort.omp")),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 4usize;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                nodes = it.next().and_then(|v| v.parse().ok()).expect("--nodes N");
            }
            f => files.push(f.to_string()),
        }
    }

    let programs: Vec<(String, String)> = if files.is_empty() {
        BUNDLED
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect()
    } else {
        files
            .into_iter()
            .map(|f| {
                let src =
                    std::fs::read_to_string(&f).unwrap_or_else(|e| panic!("cannot read {f}: {e}"));
                (f, src)
            })
            .collect()
    };

    let mut failed = false;
    for (name, src) in &programs {
        println!("== {name} on {nodes} simulated workstations ==");
        match ompc::run_source(src, OmpConfig::paper(nodes)) {
            Ok(out) => {
                for line in &out.printed {
                    println!("  {line}");
                }
                println!(
                    "  [exit {}; {:.3} virtual s; {} msgs; {:.2} MB]\n",
                    out.ret,
                    out.vt_seconds(),
                    out.msgs,
                    out.bytes as f64 / 1e6
                );
                if name == "qsort.omp" && out.ret != 0.0 {
                    eprintln!("  ERROR: qsort reported {} inversions", out.ret);
                    failed = true;
                }
            }
            Err(d) => {
                eprintln!("  compile error: {d}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
