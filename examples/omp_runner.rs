//! Run `.omp` programs through the `ompc` front-end on the simulated
//! workstation network.
//!
//! ```text
//! cargo run --release --example omp_runner                  # all bundled examples, 4 nodes
//! cargo run --release --example omp_runner -- --nodes 8     # all, 8 nodes
//! cargo run --release --example omp_runner -- --nodes 4 --tpn 2   # 4x2 SMP cluster
//! cargo run --release --example omp_runner -- --schedule dynamic,64 dotprod.omp
//! OMP_SCHEDULE=guided,8 cargo run --release --example omp_runner
//! cargo run --release --example omp_runner -- my.omp        # one file
//! ```
//!
//! `--schedule` (or the `OMP_SCHEDULE` environment variable, exactly as
//! in a real OpenMP runtime; the flag wins when both are given) sets
//! what `schedule(runtime)` loops resolve to. Malformed strings are
//! rejected with a diagnostic and exit code 2.

use nomp::{OmpConfig, Schedule};

const BUNDLED: &[(&str, &str)] = &[
    ("pi.omp", include_str!("omp/pi.omp")),
    ("dotprod.omp", include_str!("omp/dotprod.omp")),
    ("jacobi.omp", include_str!("omp/jacobi.omp")),
    ("fib.omp", include_str!("omp/fib.omp")),
    ("qsort.omp", include_str!("omp/qsort.omp")),
];

fn parse_schedule(src: &str, origin: &str) -> Schedule {
    match Schedule::parse(src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("invalid {origin} schedule: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut nodes = 4usize;
    let mut tpn = 1usize;
    let mut schedule: Option<Schedule> = None;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => {
                nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .expect("--nodes N (N >= 1)");
            }
            "--tpn" => {
                tpn = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .expect("--tpn T (T >= 1)");
            }
            "--schedule" => {
                let s = it.next().expect("--schedule KIND[,CHUNK]");
                schedule = Some(parse_schedule(s, "--schedule"));
            }
            f => files.push(f.to_string()),
        }
    }
    // `OMP_SCHEDULE` exactly as in a real runtime; the CLI flag wins.
    if schedule.is_none() {
        if let Ok(env) = std::env::var("OMP_SCHEDULE") {
            schedule = Some(parse_schedule(&env, "OMP_SCHEDULE"));
        }
    }

    let programs: Vec<(String, String)> = if files.is_empty() {
        BUNDLED
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect()
    } else {
        files
            .into_iter()
            .map(|f| {
                let src =
                    std::fs::read_to_string(&f).unwrap_or_else(|e| panic!("cannot read {f}: {e}"));
                (f, src)
            })
            .collect()
    };

    let mut failed = false;
    for (name, src) in &programs {
        println!("== {name} on {nodes} simulated workstations x {tpn} threads ==",);
        let mut cfg = OmpConfig::paper_smp(nodes, tpn);
        if let Some(s) = schedule {
            cfg.runtime_schedule = s;
        }
        match ompc::run_source(src, cfg) {
            Ok(out) => {
                for line in &out.printed {
                    println!("  {line}");
                }
                println!(
                    "  [exit {}; {:.3} virtual s; {} msgs; {:.2} MB]\n",
                    out.ret,
                    out.vt_seconds(),
                    out.msgs,
                    out.bytes as f64 / 1e6
                );
                if name == "qsort.omp" && out.ret != 0.0 {
                    eprintln!("  ERROR: qsort reported {} inversions", out.ret);
                    failed = true;
                }
            }
            Err(d) => {
                eprintln!("  compile error: {d}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
