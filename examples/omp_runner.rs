//! Run `.omp` programs through the `ompc` front-end on the simulated
//! workstation network.
//!
//! ```text
//! cargo run --release --example omp_runner                  # all bundled examples, 4 nodes
//! cargo run --release --example omp_runner -- --nodes 8     # all, 8 nodes
//! cargo run --release --example omp_runner -- --nodes 4 --tpn 2   # 4x2 SMP cluster
//! cargo run --release --example omp_runner -- --schedule dynamic,64 dotprod.omp
//! OMP_SCHEDULE=guided,8 cargo run --release --example omp_runner
//! cargo run --release --example omp_runner -- my.omp        # one file
//! # Heterogeneous / loaded clusters:
//! cargo run --release --example omp_runner -- --nodes 4 --speeds 1.0,1.0,1.0,0.5
//! cargo run --release --example omp_runner -- --load burst:40/10x3 --load-seed 7
//! cargo run --release --example omp_runner -- --load step:1@5x2 --schedule adaptive,8
//! ```
//!
//! `--schedule` (or the `OMP_SCHEDULE` environment variable, exactly as
//! in a real OpenMP runtime; the flag wins when both are given) sets
//! what `schedule(runtime)` loops resolve to. `--speeds` gives per-node
//! speed factors (`0.5` = a 2×-slow machine), `--load` a background-load
//! trace spec (`none`, `step:<node>@<ms>x<factor>`,
//! `phase:<period_ms>/<busy_ms>x<factor>`,
//! `burst:<period_ms>/<busy_ms>x<factor>`), and `--load-seed` the seed
//! driving burst placement. Malformed strings are rejected with a
//! diagnostic and exit code 2.

use nomp::{ClusterLoad, OmpConfig, Schedule};

const BUNDLED: &[(&str, &str)] = &[
    ("pi.omp", include_str!("omp/pi.omp")),
    ("dotprod.omp", include_str!("omp/dotprod.omp")),
    ("jacobi.omp", include_str!("omp/jacobi.omp")),
    ("fib.omp", include_str!("omp/fib.omp")),
    ("qsort.omp", include_str!("omp/qsort.omp")),
];

/// Print a parse failure and exit 2 (the runner's "bad usage" status).
fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match openmp_now::cli::RunnerArgs::parse(&argv) {
        Ok(a) => a,
        Err(e) => bail(&e),
    };
    let (nodes, tpn) = (args.nodes, args.tpn);
    // `OMP_SCHEDULE` exactly as in a real runtime; the CLI flag wins.
    let schedule: Option<Schedule> = match args.schedule {
        Some(s) => Some(s),
        None => match std::env::var("OMP_SCHEDULE") {
            Ok(env) => match Schedule::parse(&env) {
                Ok(s) => Some(s),
                Err(e) => bail(&format!("invalid OMP_SCHEDULE schedule: {e}")),
            },
            Err(_) => None,
        },
    };
    let load: ClusterLoad = match args.cluster_load() {
        Ok(l) => l,
        Err(e) => bail(&e),
    };

    let programs: Vec<(String, String)> = if args.files.is_empty() {
        BUNDLED
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect()
    } else {
        args.files
            .iter()
            .map(|f| {
                let src =
                    std::fs::read_to_string(f).unwrap_or_else(|e| panic!("cannot read {f}: {e}"));
                (f.clone(), src)
            })
            .collect()
    };

    let mut failed = false;
    for (name, src) in &programs {
        let hetero_note = if load.is_uniform() {
            ""
        } else {
            " (heterogeneous)"
        };
        println!("== {name} on {nodes} simulated workstations x {tpn} threads{hetero_note} ==",);
        let mut cfg = OmpConfig::paper_smp(nodes, tpn).with_load(load.clone());
        if let Some(s) = schedule {
            cfg.runtime_schedule = s;
        }
        match ompc::run_source(src, cfg) {
            Ok(out) => {
                for line in &out.printed {
                    println!("  {line}");
                }
                println!(
                    "  [exit {}; {:.3} virtual s; {} msgs; {:.2} MB]\n",
                    out.ret,
                    out.vt_seconds(),
                    out.msgs,
                    out.bytes as f64 / 1e6
                );
                if name == "qsort.omp" && out.ret != 0.0 {
                    eprintln!("  ERROR: qsort reported {} inversions", out.ret);
                    failed = true;
                }
            }
            Err(d) => {
                eprintln!("  compile error: {d}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
