//! Run `.omp` programs through the `ompc` front-end on one warm
//! simulated workstation cluster (the `Cluster` session API: every file
//! and every repetition reuses the same simulated network and DSM
//! system, spun up exactly once).
//!
//! ```text
//! cargo run --release --example omp_runner                  # all bundled examples, 4 nodes
//! cargo run --release --example omp_runner -- --nodes 8     # all, 8 nodes
//! cargo run --release --example omp_runner -- --nodes 4 --tpn 2   # 4x2 SMP cluster
//! cargo run --release --example omp_runner -- --schedule dynamic,64 dotprod.omp
//! OMP_SCHEDULE=guided,8 cargo run --release --example omp_runner
//! cargo run --release --example omp_runner -- my.omp        # one file
//! cargo run --release --example omp_runner -- --repeat 5 pi.omp  # 5 warm runs
//! # Heterogeneous / loaded clusters:
//! cargo run --release --example omp_runner -- --nodes 4 --speeds 1.0,1.0,1.0,0.5
//! cargo run --release --example omp_runner -- --load burst:40/10x3 --load-seed 7
//! cargo run --release --example omp_runner -- --load step:1@5x2 --schedule adaptive,8
//! ```
//!
//! `--schedule` (or the `OMP_SCHEDULE` environment variable, exactly as
//! in a real OpenMP runtime; the flag wins when both are given) sets
//! what `schedule(runtime)` loops resolve to. `--speeds` gives per-node
//! speed factors (`0.5` = a 2×-slow machine), `--load` a background-load
//! trace spec (`none`, `step:<node>@<ms>x<factor>`,
//! `phase:<period_ms>/<busy_ms>x<factor>`,
//! `burst:<period_ms>/<busy_ms>x<factor>`), `--load-seed` the seed
//! driving burst placement, and `--repeat N` runs every program N times
//! on the warm cluster (same seed ⇒ bit-identical repetitions).
//! Malformed strings are rejected with a diagnostic and exit code 2.
//!
//! Observability: `--trace out.json` records virtual-time events and
//! writes each job's Chrome-trace JSON (load in Perfetto /
//! `chrome://tracing`; multi-job invocations get `.job<N>` suffixes),
//! and `--profile` prints each program's per-node time breakdown, hot
//! pages, chunk-claim histogram, and message timeline. Recording never
//! changes results or virtual times.
//!
//! ```text
//! cargo run --release --example omp_runner -- --trace jacobi.json --nodes 4 --tpn 2 jacobi.omp
//! cargo run --release --example omp_runner -- --profile pi.omp
//! ```
//!
//! Metrics: the cluster always records lifetime counters and histograms
//! (lock-free, never perturbing virtual time). `--metrics out.prom`
//! writes the cumulative snapshot — covering *all* jobs of the
//! invocation — in Prometheus text exposition format after the last job
//! finishes; `--metrics-json out.json` writes the same snapshot as JSON.
//! The out-path semantics deliberately differ from `--trace`: a trace
//! is a per-job artifact (multi-job invocations get one file per job,
//! `.job<N>` spliced before the extension), while metrics are one
//! lifetime snapshot — each metrics flag writes exactly one file, at
//! the path given verbatim, no matter how many jobs ran.
//!
//! ```text
//! cargo run --release --example omp_runner -- --metrics now.prom --metrics-json now.json pi.omp
//! ```
//!
//! Analysis: `--analyze` runs the static race/sync analyzer instead of
//! executing — findings (`OMP201`..`OMP206`, see the README's lint
//! catalog) print one per line with source spans; `--analyze=json`
//! renders them as one JSON array per program. `--deny-races` promotes
//! the race-class findings (`OMP201`..`OMP204`) to errors and makes the
//! runner exit 1 if any program has one — the CI gate over
//! `examples/omp/`. `--race-check` executes under the dynamic
//! happens-before checker and prints every concrete racing pair
//! observed (with `--deny-races`, observed races also fail the run).
//!
//! ```text
//! cargo run --release --example omp_runner -- --analyze --deny-races examples/omp/*.omp
//! cargo run --release --example omp_runner -- --analyze=json my.omp
//! cargo run --release --example omp_runner -- --race-check my.omp
//! ```

use nomp::Schedule;

const BUNDLED: &[(&str, &str)] = &[
    ("pi.omp", include_str!("omp/pi.omp")),
    ("dotprod.omp", include_str!("omp/dotprod.omp")),
    ("jacobi.omp", include_str!("omp/jacobi.omp")),
    ("fib.omp", include_str!("omp/fib.omp")),
    ("qsort.omp", include_str!("omp/qsort.omp")),
];

/// Print a parse failure and exit 2 (the runner's "bad usage" status).
fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = match openmp_now::cli::RunnerArgs::parse(&argv) {
        Ok(a) => a,
        Err(e) => bail(&e),
    };
    // `OMP_SCHEDULE` exactly as in a real runtime; the CLI flag wins.
    if args.schedule.is_none() {
        if let Ok(env) = std::env::var("OMP_SCHEDULE") {
            match Schedule::parse(&env) {
                Ok(s) => args.schedule = Some(s),
                Err(e) => bail(&format!("invalid OMP_SCHEDULE schedule: {e}")),
            }
        }
    }

    let programs: Vec<(String, String)> = if args.files.is_empty() {
        BUNDLED
            .iter()
            .map(|(n, s)| (n.to_string(), s.to_string()))
            .collect()
    } else {
        args.files
            .iter()
            .map(|f| {
                let src =
                    std::fs::read_to_string(f).unwrap_or_else(|e| panic!("cannot read {f}: {e}"));
                (f.clone(), src)
            })
            .collect()
    };

    // Analysis mode: compile + lint every program, no cluster at all.
    if args.analyze {
        let mut denied = false;
        let mut bad = false;
        for (name, src) in &programs {
            let report = match ompc::compile_report(src) {
                Ok(r) => r,
                Err(d) => {
                    eprintln!("{name}: compile error: {d}");
                    bad = true;
                    continue;
                }
            };
            let mut lints = report.lints;
            if args.deny_races {
                ompc::promote_races(&mut lints);
            }
            denied |= lints.iter().any(|l| l.level == ompc::LintLevel::Deny);
            if args.analyze_json {
                println!("{name}: {}", ompc::lints_to_json(&lints));
            } else if lints.is_empty() {
                println!("{name}: clean");
            } else {
                for l in &lints {
                    println!("{name}: {l}");
                }
            }
        }
        if bad {
            std::process::exit(2);
        }
        std::process::exit(if denied { 1 } else { 0 });
    }

    // One warm cluster for every file × repetition of this invocation.
    let mut cluster = match args.cluster() {
        Ok(c) => c,
        Err(e) => bail(&e.to_string()),
    };
    let hetero_note = if cluster.config().tmk.net.load.is_uniform() {
        ""
    } else {
        " (heterogeneous)"
    };

    let multi_job = programs.len() * args.repeat > 1;
    let mut failed = false;
    for (name, src) in &programs {
        println!(
            "== {name} on {} simulated workstations x {} threads{hetero_note} ==",
            cluster.nodes(),
            cluster.threads_per_node(),
        );
        let compiled = match ompc::compile(src) {
            Ok(c) => c.check_races(args.race_check),
            Err(d) => {
                eprintln!("  compile error: {d}");
                failed = true;
                continue;
            }
        };
        for rep in 0..args.repeat {
            let out = match cluster.run(&compiled) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("  cluster error: {e}");
                    failed = true;
                    break;
                }
            };
            if rep == 0 {
                for line in &out.result.printed {
                    println!("  {line}");
                }
            }
            if args.race_check && rep == 0 {
                if out.result.races.is_empty() {
                    println!("  [race-check: no races observed]");
                } else {
                    for r in &out.result.races {
                        println!("  [race-check] {r}");
                    }
                    if args.deny_races {
                        eprintln!("  ERROR: {} data race(s) observed", out.result.races.len());
                        failed = true;
                    }
                }
            }
            if let Some(path) = args.trace_path(out.job, multi_job) {
                let tr = out.trace.as_ref().expect("--trace arms recording");
                if let Err(e) = std::fs::write(&path, tr.to_chrome_json()) {
                    bail(&format!("cannot write trace to {path}: {e}"));
                }
                println!("  [trace: {path}, {} events]", tr.event_count());
            }
            if args.profile && rep == 0 {
                let p = out.profile.as_ref().expect("--profile arms recording");
                for line in p.render().lines() {
                    println!("  {line}");
                }
            }
            let rep_note = if args.repeat > 1 {
                format!(" (job {} on the warm cluster)", out.job)
            } else {
                String::new()
            };
            println!(
                "  [exit {}; {:.3} virtual s; {} msgs; {:.2} MB]{rep_note}",
                out.result.ret,
                out.vt_seconds(),
                out.msgs(),
                out.bytes() as f64 / 1e6
            );
            if name.ends_with("qsort.omp") && out.result.ret != 0.0 {
                eprintln!("  ERROR: qsort reported {} inversions", out.result.ret);
                failed = true;
            }
        }
        println!();
    }
    // Cumulative lifetime metrics: one snapshot covering every file ×
    // repetition the warm cluster just ran.
    if args.metrics.is_some() || args.metrics_json.is_some() {
        let snap = cluster.metrics();
        if let Some(path) = &args.metrics {
            if let Err(e) = std::fs::write(path, snap.to_prometheus()) {
                bail(&format!("cannot write metrics to {path}: {e}"));
            }
            println!("[metrics: {path}]");
        }
        if let Some(path) = &args.metrics_json {
            if let Err(e) = std::fs::write(path, snap.to_json()) {
                bail(&format!("cannot write metrics to {path}: {e}"));
            }
            println!("[metrics-json: {path}]");
        }
    }
    if failed {
        std::process::exit(1);
    }
}
