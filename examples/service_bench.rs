//! Cluster-pool service throughput sweep: queue a large mixed job batch
//! (trivial closures + periodic `.omp` programs, tenants `alice`/`bob`
//! at 2:1 weights) against held `now-service` pools, release, and
//! measure sustained jobs/second plus p50/p99 host service latency per
//! pool size. A saturation cell per pool overfills a held queue by a
//! fixed amount, so its `queue_full` reject count is exact. Emits the
//! machine-readable `BENCH_service.json` the regression gate consumes.
//!
//! ```text
//! cargo run --release --example service_bench                 # 10k jobs, pools 2 and 4
//! cargo run --release --example service_bench -- --jobs 30000 --pools 2,4,8
//! cargo run --release --example service_bench -- --out /tmp/s.json
//! ```

use now_bench::service;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut jobs = 10_002usize; // divisible by 3: exact 2:1 offered load
    let mut pools = vec![2usize, 4];
    let mut out_path = "BENCH_service.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 3)
                    .expect("--jobs N (N >= 3)");
            }
            "--pools" => {
                pools = it
                    .next()
                    .expect("--pools P1,P2,...")
                    .split(',')
                    .map(|p| p.parse().expect("--pools takes positive integers"))
                    .collect();
            }
            "--out" => {
                out_path = it.next().expect("--out PATH").clone();
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let rows = service::service_sweep(jobs, &pools);
    let json = service::rows_to_json(jobs, &rows);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {} rows to {out_path}", rows.len());
}
