//! The distributed tasking runtime in action: task-based QSORT with
//! cross-node work stealing vs. the centralized Figure-4 queue.
//!
//! Run with: `cargo run --release --example task_stealing`

use openmp_now::nomp::TaskSched;
use openmp_now::prelude::*;

fn main() {
    let cfg = now_apps::qsort::QsortConfig {
        n: 32 * 1024,
        bubble_threshold: 256,
        seed: 7,
    };
    let seq = now_apps::qsort::run_seq(&cfg, 240.0);
    println!(
        "Task-based QSORT, {} integers, bubble threshold {}:",
        cfg.n, cfg.bubble_threshold
    );
    println!("  sequential: {:.3} model-seconds\n", seq.vt_seconds());
    println!(
        "{:>5}  {:>10}  {:>9}  {:>8}  {:>8}  {:>7}",
        "nodes", "sched", "time s", "speedup", "messages", "stolen"
    );
    for nodes in [2usize, 4, 8] {
        for sched in [TaskSched::Centralized, TaskSched::WorkSteal] {
            let (r, stats) = now_apps::qsort::run_task_stats(&cfg, OmpConfig::paper(nodes), sched);
            assert_eq!(r.checksum, seq.checksum, "parallel sort must match");
            println!(
                "{:>5}  {:>10}  {:>9.3}  {:>8.2}  {:>8}  {:>7}",
                nodes,
                format!("{sched:?}"),
                r.vt_seconds(),
                r.speedup_vs(&seq),
                r.msgs,
                stats.tasks_stolen,
            );
        }
    }
    println!("\nPer-node deques make spawn/pop message-free (the deque lock's");
    println!("manager is its owner); idle nodes steal with a small constant");
    println!("number of messages; idle workers park on a condition variable.");
}
