//! The paper's §3.2 argument, live: a producer/consumer pipeline written
//! with `flush` (Figure 1) versus with the proposed semaphore directives
//! (Figure 3). Flush costs 2(n−1) messages per synchronization; the
//! semaphore version a small constant.
//!
//! Run with: `cargo run --example pipeline_semaphores`

use openmp_now::prelude::*;

const HANDOFFS: u64 = 25;
const AVAIL: u32 = 0;
const DONE: u32 = 1;

fn sema_version(cluster: &mut Cluster) -> (u64, u64) {
    let out = cluster
        .run(|omp: &mut Env<'_>| {
            let data = omp.malloc_scalar::<u64>(0);
            let sum = omp.malloc_scalar::<u64>(0);
            omp.parallel(move |t| match t.thread_num() {
                0 => {
                    for i in 1..=HANDOFFS {
                        data.set(t, i);
                        t.sema_signal(AVAIL);
                        t.sema_wait(DONE);
                    }
                }
                1 => {
                    let mut acc = 0;
                    for _ in 0..HANDOFFS {
                        t.sema_wait(AVAIL);
                        acc += data.get(t);
                        t.sema_signal(DONE);
                    }
                    sum.set(t, acc);
                }
                _ => {}
            });
            sum.get(omp)
        })
        .expect("cluster job");
    assert_eq!(out.result, HANDOFFS * (HANDOFFS + 1) / 2);
    (out.vt_ns, out.msgs())
}

fn flush_version(cluster: &mut Cluster) -> (u64, u64) {
    let out = cluster
        .run(|omp: &mut Env<'_>| {
            let data = omp.malloc_scalar::<u64>(0);
            let available = omp.malloc_scalar::<u32>(0);
            let done = omp.malloc_scalar::<u32>(0);
            let sum = omp.malloc_scalar::<u64>(0);
            omp.parallel(move |t| match t.thread_num() {
                0 => {
                    for i in 1..=HANDOFFS {
                        data.set(t, i);
                        available.set(t, 1);
                        t.flush();
                        while done.get(t) == 0 {
                            t.spin_hint();
                        }
                        done.set(t, 0);
                    }
                }
                1 => {
                    let mut acc = 0;
                    for _ in 0..HANDOFFS {
                        while available.get(t) == 0 {
                            t.spin_hint();
                        }
                        available.set(t, 0);
                        acc += data.get(t);
                        done.set(t, 1);
                        t.flush();
                    }
                    sum.set(t, acc);
                }
                _ => {}
            });
            sum.get(omp)
        })
        .expect("cluster job");
    assert_eq!(out.result, HANDOFFS * (HANDOFFS + 1) / 2);
    (out.vt_ns, out.msgs())
}

fn main() {
    println!("{HANDOFFS} pipeline handoffs between workstations 0 and 1:\n");
    println!("nodes  flush msgs  sema msgs   flush s   sema s");
    for nodes in [2usize, 4, 8] {
        // Both versions run as jobs on one warm cluster per node count.
        let mut cluster = Cluster::builder()
            .nodes(nodes)
            .build()
            .expect("valid cluster");
        let (fv, fm) = flush_version(&mut cluster);
        let (sv, sm) = sema_version(&mut cluster);
        println!(
            "{nodes:>5}  {fm:>10}  {sm:>9}  {:>8.3}  {:>7.3}",
            fv as f64 / 1e9,
            sv as f64 / 1e9
        );
    }
    println!("\nflush broadcasts to every node: its cost grows with the cluster;");
    println!("the paper's semaphore directives keep it constant (Modification 2).");
}
